"""Memoization of Monte-Carlo estimates with observable statistics.

Greedy seeding algorithms re-evaluate the same seed group many times
(CELF-style lazy evaluation, fallback comparisons, DR re-planning), so
the estimator memoizes :class:`MonteCarloEstimate`s keyed by the
canonicalized seed group plus the full estimator configuration.  The
cache counts hits and misses so callers (``DysimResult``, benchmarks)
can report how much Monte-Carlo work memoization saved.

Keys include the sample count, trigger model and root RNG seed, so one
:class:`SigmaCache` can safely back several estimators — estimates from
incompatible configurations can never collide.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.diffusion.montecarlo import MonteCarloEstimate

__all__ = ["CacheStats", "SigmaCache"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`SigmaCache`."""

    hits: int
    misses: int
    entries: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SigmaCache:
    """LRU memoization of Monte-Carlo estimates.

    Parameters
    ----------
    max_entries:
        Evict least-recently-used entries beyond this count.  ``None``
        (the default) keeps everything, which matches the lifetime of
        one algorithm run; long-lived services should set a bound.
    """

    def __init__(self, max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, MonteCarloEstimate]" = OrderedDict()
        self._pins: list[object] = []
        self.hits = 0
        self.misses = 0

    def pin(self, obj: object) -> None:
        """Keep ``obj`` alive as long as this cache.

        Estimators key entries by ``id(instance)``; pinning the
        instance guarantees that id cannot be recycled by a different
        object while its entries are still retrievable.
        """
        if not any(pinned is obj for pinned in self._pins):
            self._pins.append(obj)

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> "MonteCarloEstimate | None":
        """Look up a key, counting the hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def put(self, key: Hashable, estimate: "MonteCarloEstimate") -> None:
        """Store an estimate, evicting the LRU entry when over bound."""
        self._entries[key] = estimate
        self._entries.move_to_end(key)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/entry counters."""
        return CacheStats(
            hits=self.hits, misses=self.misses, entries=len(self._entries)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SigmaCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
