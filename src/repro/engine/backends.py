"""Execution backends: where Monte-Carlo replications actually run.

The estimator hands a :class:`~repro.engine.replication.ReplicationTask`
to a backend; the backend fans the canonical sample chunks out to its
workers and merges the results in chunk order.  Because every backend
dispatches the same :func:`~repro.engine.replication.run_chunk` over the
same partition, results are bit-identical across backends — see the
``repro.engine.replication`` module docstring for why.

Choosing a backend
------------------
``serial``
    No concurrency, no overhead.  The default, and the fastest option
    for the small instances used in tests.
``thread``
    A shared ``ThreadPoolExecutor``.  Replications are largely pure
    Python, so the GIL caps the speedup; threads pay off only when the
    NumPy share of a step dominates.  Cheap to spin up, useful for
    overlapping many small estimates.
``process``
    A ``ProcessPoolExecutor``.  True parallelism; pays one pickle of
    the task per chunk plus a one-off pool start-up, so it wins once
    replications are expensive (large instances or high sample counts).
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Protocol, runtime_checkable

from repro.engine.replication import (
    DEFAULT_CHUNK_SIZE,
    ChunkResult,
    ReplicationTask,
    chunk_indices,
    lockstep_applicable,
    run_chunk,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "BACKEND_NAMES",
    "resolve_backend",
    "set_default_backend",
    "get_default_backend",
    "worker_chunks",
]


def _replication_chunks(
    task: ReplicationTask,
    n_samples: int,
    backend: "ExecutionBackend",
    chunk_size: int,
) -> list[list[int]]:
    """The chunk partition a backend fans ``task`` out over.

    The fine-grained canonical partition by default; when the task
    takes the lockstep fast path the partition coarsens to one chunk
    per worker (``chunk_indices(0)`` guard applies either way).  Safe
    because lockstep tasks only produce per-sample scalars, which are
    gathered in index order regardless of chunk boundaries — the
    matrix accumulators whose reduction tree the canonical partition
    pins are excluded by :func:`lockstep_applicable` — and profitable
    because one packed kernel call amortizes per-chunk setup (state
    caches, and on process pools the task pickle) across the whole
    worker share, as RR-set sampling already does.
    """
    if n_samples >= 1 and lockstep_applicable(task):
        return worker_chunks(n_samples, backend)
    return chunk_indices(n_samples, chunk_size)


def worker_chunks(
    n_items: int, backend: "ExecutionBackend | None" = None
) -> list[list[int]]:
    """Balanced contiguous index chunks, one per available worker.

    The coarse-grained sibling of
    :func:`~repro.engine.replication.chunk_indices`: instead of a fixed
    chunk *size* it splits ``n_items`` into at most ``backend.workers``
    contiguous chunks (serial backends expose no ``workers`` attribute
    and get a single chunk), sized within one item of each other.  Used
    by consumers whose work units are already coarse — sweep runs,
    reachability source blocks — where one chunk per worker minimizes
    pickling overhead while keeping the pool saturated.
    """
    if n_items <= 0:
        return []
    workers = getattr(backend, "workers", 1) or 1
    n_chunks = max(1, min(int(workers), n_items))
    quotient, remainder = divmod(n_items, n_chunks)
    chunks: list[list[int]] = []
    start = 0
    for index in range(n_chunks):
        size = quotient + (1 if index < remainder else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


@runtime_checkable
class ExecutionBackend(Protocol):
    """Minimal contract every execution backend satisfies."""

    name: str

    def run(self, task: ReplicationTask, n_samples: int) -> ChunkResult:
        """Execute ``n_samples`` replications of ``task``."""
        ...

    def map_chunks(self, fn, task, chunks: list[list[int]]) -> list:
        """Run ``fn(task, chunk)`` per chunk, results in chunk order."""
        ...

    def close(self) -> None:
        """Release worker resources (idempotent)."""
        ...


class SerialBackend:
    """Run every chunk in the calling thread (the reference backend)."""

    name = "serial"

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE):
        self.chunk_size = int(chunk_size)

    @property
    def closed(self) -> bool:
        """Serial execution holds no resources — never closed."""
        return False

    def map_chunks(self, fn, task, chunks: list[list[int]]) -> list:
        """Run ``fn(task, chunk)`` per chunk, results in chunk order.

        The generic fan-out primitive behind both Monte-Carlo
        replication (:func:`~repro.engine.replication.run_chunk`) and
        sketch construction (``repro.sketch``): any module-level
        ``fn(task, indices)`` over the canonical chunk partition can be
        dispatched, and results always come back in chunk order so
        reductions stay backend-independent.
        """
        return [fn(task, chunk) for chunk in chunks]

    def run(self, task: ReplicationTask, n_samples: int) -> ChunkResult:
        return ChunkResult.merge(
            self.map_chunks(
                run_chunk,
                task,
                _replication_chunks(task, n_samples, self, self.chunk_size),
            )
        )

    def close(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialBackend()"


class _PoolBackend:
    """Shared executor plumbing for thread / process backends."""

    name = "pool"

    #: Cap the effective worker count at the machine's core count?
    #: Process pools do (an oversubscribed pool only adds pickling and
    #: scheduling overhead — the BENCH_v7 ``engine_scaling`` regression
    #: was ``workers=4`` on a 1-core runner); thread pools don't, since
    #: threads legitimately oversubscribe to overlap GIL-released
    #: numpy sections and blocking waits.
    cap_workers_at_cpu_count = False

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        #: What the caller asked for, before the CPU cap — bench
        #: context records both so scaling numbers are interpretable.
        self.requested_workers = workers
        cpu_count = os.cpu_count() or 1
        effective = workers or min(8, cpu_count)
        if self.cap_workers_at_cpu_count:
            effective = min(effective, cpu_count)
        self.workers = effective
        self.chunk_size = int(chunk_size)
        self._executor: concurrent.futures.Executor | None = None
        self._closed = False
        self._cleanups: list = []

    def _make_executor(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran — ``run``/``map_chunks`` raise.

        Long-lived consumers that may outlive the backend they were
        built with (e.g. a :class:`~repro.sketch.RealizationBank`
        constructed inside a ``with backend:`` block) probe this to
        fall back to in-process execution instead of raising.
        """
        return self._closed

    @property
    def executor(self) -> concurrent.futures.Executor:
        """The lazily-created, reused worker pool."""
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def map_chunks(self, fn, task, chunks: list[list[int]]) -> list:
        """Fan ``fn(task, chunk)`` out to the pool, results in order.

        ``fn`` must be a module-level function (process pools pickle it
        by qualified name).  A single chunk skips the executor — and,
        for process pools, the pickling round trip — entirely.
        ``Executor.map`` yields results in submission order, which is
        the canonical chunk order reductions require.
        """
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")
        if len(chunks) <= 1:
            return [fn(task, chunk) for chunk in chunks]
        return list(self.executor.map(fn, (task for _ in chunks), chunks))

    def run(self, task: ReplicationTask, n_samples: int) -> ChunkResult:
        return ChunkResult.merge(
            self.map_chunks(
                run_chunk,
                task,
                _replication_chunks(task, n_samples, self, self.chunk_size),
            )
        )

    def add_cleanup(self, callback) -> None:
        """Register a resource-release callback for :meth:`close`.

        The shared-memory layer (:mod:`repro.engine.shm`) ties exported
        CSR blocks to the backend that ships their handles: unlinking
        must happen exactly when the pool dies — earlier and in-flight
        workers lose their files, later and the blocks leak.  Callbacks
        run after the executor has shut down (workers joined), in
        registration order; exceptions are swallowed so one failed
        unlink cannot mask the close.
        """
        self._cleanups.append(callback)

    def _run_cleanups(self) -> None:
        cleanups, self._cleanups = self._cleanups, []
        for callback in cleanups:
            try:
                callback()
            except Exception:
                pass

    def close(self) -> None:
        # Terminal: further run()/executor access raises rather than
        # silently resurrecting an orphan pool nothing would close.
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._run_cleanups()

    def __del__(self):  # pragma: no cover - GC-timing dependent
        # Safety net: a backend resolved per algorithm run (e.g.
        # ``DysimConfig(backend="process")``) may never see an explicit
        # close(); release its workers when the backend is collected.
        try:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._run_cleanups()
        except Exception:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadBackend(_PoolBackend):
    """Fan chunks out to a thread pool (GIL-bound; low overhead)."""

    name = "thread"

    def _make_executor(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-engine",
        )


class ProcessPoolBackend(_PoolBackend):
    """Fan chunks out to worker processes (true parallelism).

    Requested workers beyond ``os.cpu_count()`` are capped (see
    :attr:`requested_workers` for the original ask): extra processes
    cannot run anywhere, and on a single-core host a 4-worker pool
    *lost* time to pickling (``engine_scaling`` 0.79x in BENCH_v7).
    On ``cpu_count() == 1`` the pool degenerates to one worker — the
    bank's compute paths then prefer their serial shapes outright.
    """

    name = "process"
    cap_workers_at_cpu_count = True

    def _make_executor(self) -> concurrent.futures.Executor:
        return concurrent.futures.ProcessPoolExecutor(max_workers=self.workers)


#: Constructors for the spelled-out backend names (CLI / config).
BACKEND_NAMES = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessPoolBackend,
}

_default_backend: ExecutionBackend | None = None


def set_default_backend(
    backend: ExecutionBackend | str | None,
    workers: int | None = None,
) -> ExecutionBackend:
    """Install the process-wide default backend and return it.

    Estimators constructed without an explicit backend use this one;
    the CLI's ``--backend/--workers`` flags route through here so every
    algorithm in a run shares one worker pool.
    """
    global _default_backend
    if _default_backend is not None:
        _default_backend.close()
    if backend is None:
        _default_backend = None
    else:
        _default_backend = resolve_backend(backend, workers)
    return get_default_backend()


def get_default_backend() -> ExecutionBackend:
    """The process-wide default backend (serial unless configured)."""
    global _default_backend
    if _default_backend is None:
        _default_backend = SerialBackend()
    return _default_backend


def resolve_backend(
    backend: ExecutionBackend | str | None,
    workers: int | None = None,
) -> ExecutionBackend:
    """Turn a backend spec (name, instance or None) into a backend.

    ``None`` resolves to the process-wide default; a string looks up
    :data:`BACKEND_NAMES`; an object implementing the protocol is
    returned as-is (``workers`` is ignored for instances).
    """
    if backend is None:
        return get_default_backend()
    if isinstance(backend, str):
        try:
            factory = BACKEND_NAMES[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; "
                f"expected one of {sorted(BACKEND_NAMES)}"
            ) from None
        if factory is SerialBackend:
            return SerialBackend()
        return factory(workers=workers)
    if isinstance(backend, ExecutionBackend):
        return backend
    raise TypeError(f"not an execution backend: {backend!r}")
