"""Execution backends: where Monte-Carlo replications actually run.

The estimator hands a :class:`~repro.engine.replication.ReplicationTask`
to a backend; the backend fans the canonical sample chunks out to its
workers and merges the results in chunk order.  Because every backend
dispatches the same :func:`~repro.engine.replication.run_chunk` over the
same partition, results are bit-identical across backends — see the
``repro.engine.replication`` module docstring for why.

Choosing a backend
------------------
``serial``
    No concurrency, no overhead.  The default, and the fastest option
    for the small instances used in tests.
``thread``
    A shared ``ThreadPoolExecutor``.  Replications are largely pure
    Python, so the GIL caps the speedup; threads pay off only when the
    NumPy share of a step dominates.  Cheap to spin up, useful for
    overlapping many small estimates.
``process``
    A ``ProcessPoolExecutor``.  True parallelism; pays one pickle of
    the task per chunk plus a one-off pool start-up, so it wins once
    replications are expensive (large instances or high sample counts).

Fault tolerance
---------------
Pool backends supervise every dispatch through
:mod:`repro.engine.resilience`: a dead worker, a raising chunk or a
chunk past its deadline is re-dispatched (only the failed chunks, with
capped backoff, rebuilding the pool when it broke), and exhausted
retries degrade to thread and then serial execution with a one-time
``RuntimeWarning`` instead of aborting the run.  Recovery is
bit-identical — chunks are pure functions of ``(task, chunk)`` — and
accounted in :attr:`fault_stats` (``retries=``/``chunk_timeout=``
tune the policy; ``fault_plan=`` or ``REPRO_FAULT_PLAN`` injects
deterministic faults for testing).
"""

from __future__ import annotations

import concurrent.futures
import logging
import os
from typing import Protocol, runtime_checkable

from repro.engine.replication import (
    DEFAULT_CHUNK_SIZE,
    ChunkResult,
    ReplicationTask,
    chunk_indices,
    lockstep_applicable,
    run_chunk,
)
from repro.engine.resilience import (
    FaultPlan,
    FaultStats,
    default_retry_policy,
    supervise_map_chunks,
    supervise_serial,
)

logger = logging.getLogger(__name__)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "BACKEND_NAMES",
    "resolve_backend",
    "set_default_backend",
    "get_default_backend",
    "worker_chunks",
]


def _replication_chunks(
    task: ReplicationTask,
    n_samples: int,
    backend: "ExecutionBackend",
    chunk_size: int,
) -> list[list[int]]:
    """The chunk partition a backend fans ``task`` out over.

    The fine-grained canonical partition by default; when the task
    takes the lockstep fast path the partition coarsens to one chunk
    per worker (``chunk_indices(0)`` guard applies either way).  Safe
    because lockstep tasks only produce per-sample scalars, which are
    gathered in index order regardless of chunk boundaries — the
    matrix accumulators whose reduction tree the canonical partition
    pins are excluded by :func:`lockstep_applicable` — and profitable
    because one packed kernel call amortizes per-chunk setup (state
    caches, and on process pools the task pickle) across the whole
    worker share, as RR-set sampling already does.
    """
    if n_samples >= 1 and lockstep_applicable(task):
        return worker_chunks(n_samples, backend)
    return chunk_indices(n_samples, chunk_size)


def worker_chunks(
    n_items: int, backend: "ExecutionBackend | None" = None
) -> list[list[int]]:
    """Balanced contiguous index chunks, one per available worker.

    The coarse-grained sibling of
    :func:`~repro.engine.replication.chunk_indices`: instead of a fixed
    chunk *size* it splits ``n_items`` into at most ``backend.workers``
    contiguous chunks (serial backends expose no ``workers`` attribute
    and get a single chunk), sized within one item of each other.  Used
    by consumers whose work units are already coarse — sweep runs,
    reachability source blocks — where one chunk per worker minimizes
    pickling overhead while keeping the pool saturated.
    """
    if n_items <= 0:
        return []
    workers = getattr(backend, "workers", 1) or 1
    n_chunks = max(1, min(int(workers), n_items))
    quotient, remainder = divmod(n_items, n_chunks)
    chunks: list[list[int]] = []
    start = 0
    for index in range(n_chunks):
        size = quotient + (1 if index < remainder else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


class _FaultAware:
    """Supervision state shared by every concrete backend.

    Holds the retry policy, the (optional) fault-injection plan, the
    cumulative :class:`FaultStats` accumulator and the per-backend
    dispatch counters the plan's ``(call, chunk)`` coordinates are
    resolved against.
    """

    def _init_resilience(
        self,
        retries: int | None,
        chunk_timeout: float | None,
        fault_plan: FaultPlan | None,
    ) -> None:
        self.retry_policy = default_retry_policy(retries, chunk_timeout)
        #: Active fault-injection plan (explicit kwarg wins over the
        #: ``REPRO_FAULT_PLAN`` environment variable; pass an empty
        #: ``FaultPlan()`` to mask the environment).
        self.fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        #: Cumulative fault-handling record over the backend's life.
        self.fault_stats = FaultStats()
        self._supervised_calls = 0
        self._chunks_dispatched = 0
        self._degrade_warned = False

    def _next_supervised_call(self, n_chunks: int) -> tuple[int, int]:
        """Allocate (call index, global chunk base) for one dispatch."""
        call = self._supervised_calls
        base = self._chunks_dispatched
        self._supervised_calls += 1
        self._chunks_dispatched += n_chunks
        return call, base

    def _run_replications(
        self, task: ReplicationTask, n_samples: int, chunk_size: int
    ) -> ChunkResult:
        """``run()`` body: merge chunks, attach the fault-stats delta."""
        before = self.fault_stats.copy()
        merged = ChunkResult.merge(
            self.map_chunks(
                run_chunk,
                task,
                _replication_chunks(task, n_samples, self, chunk_size),
            )
        )
        delta = self.fault_stats.delta(before)
        if delta.activity:
            merged.fault_stats = (
                delta
                if merged.fault_stats is None
                else merged.fault_stats.combine(delta)
            )
        return merged


@runtime_checkable
class ExecutionBackend(Protocol):
    """Minimal contract every execution backend satisfies."""

    name: str

    def run(self, task: ReplicationTask, n_samples: int) -> ChunkResult:
        """Execute ``n_samples`` replications of ``task``."""
        ...

    def map_chunks(self, fn, task, chunks: list[list[int]]) -> list:
        """Run ``fn(task, chunk)`` per chunk, results in chunk order."""
        ...

    def close(self) -> None:
        """Release worker resources (idempotent)."""
        ...


class SerialBackend(_FaultAware):
    """Run every chunk in the calling thread (the reference backend)."""

    name = "serial"

    def __init__(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        retries: int | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self.chunk_size = int(chunk_size)
        self._init_resilience(retries, None, fault_plan)

    @property
    def closed(self) -> bool:
        """Serial execution holds no resources — never closed."""
        return False

    def map_chunks(self, fn, task, chunks: list[list[int]]) -> list:
        """Run ``fn(task, chunk)`` per chunk, results in chunk order.

        The generic fan-out primitive behind both Monte-Carlo
        replication (:func:`~repro.engine.replication.run_chunk`) and
        sketch construction (``repro.sketch``): any module-level
        ``fn(task, indices)`` over the canonical chunk partition can be
        dispatched, and results always come back in chunk order so
        reductions stay backend-independent.

        With an active fault plan the serial supervisor wraps each
        chunk (injection + retry with backoff); without one the plain
        loop runs — an in-process exception is deterministic, so
        retrying it uninjected is pointless.
        """
        if self.fault_plan is not None:
            return supervise_serial(self, fn, task, chunks)
        return [fn(task, chunk) for chunk in chunks]

    def run(self, task: ReplicationTask, n_samples: int) -> ChunkResult:
        return self._run_replications(task, n_samples, self.chunk_size)

    def close(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialBackend()"


class _PoolBackend(_FaultAware):
    """Shared executor plumbing for thread / process backends."""

    name = "pool"

    #: Cap the effective worker count at the machine's core count?
    #: Process pools do (an oversubscribed pool only adds pickling and
    #: scheduling overhead — the BENCH_v7 ``engine_scaling`` regression
    #: was ``workers=4`` on a 1-core runner); thread pools don't, since
    #: threads legitimately oversubscribe to overlap GIL-released
    #: numpy sections and blocking waits.
    cap_workers_at_cpu_count = False

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        retries: int | None = None,
        chunk_timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        #: What the caller asked for, before the CPU cap — bench
        #: context records both so scaling numbers are interpretable.
        self.requested_workers = workers
        cpu_count = os.cpu_count() or 1
        effective = workers or min(8, cpu_count)
        if self.cap_workers_at_cpu_count:
            effective = min(effective, cpu_count)
        self.workers = effective
        self.chunk_size = int(chunk_size)
        self._executor: concurrent.futures.Executor | None = None
        self._closed = False
        self._cleanups: list = []
        self._init_resilience(retries, chunk_timeout, fault_plan)

    def _make_executor(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran — ``run``/``map_chunks`` raise.

        Long-lived consumers that may outlive the backend they were
        built with (e.g. a :class:`~repro.sketch.RealizationBank`
        constructed inside a ``with backend:`` block) probe this to
        fall back to in-process execution instead of raising.
        """
        return self._closed

    @property
    def executor(self) -> concurrent.futures.Executor:
        """The lazily-created, reused worker pool."""
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def _rebuild_pool(self, kill: bool = False) -> None:
        """Tear down a broken/hung executor; the next access respawns.

        Crucially does NOT run cleanup callbacks: shared-memory files
        must outlive the pool that broke — fresh workers re-attach the
        same handles when they unpickle the next task.  With ``kill``
        the surviving worker processes are terminated first (a hung
        pool never joins on its own; its workers may sleep forever).
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        if kill:
            for process in getattr(executor, "_processes", {}).values():
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - already dead
                    pass
        executor.shutdown(wait=False, cancel_futures=True)

    def map_chunks(self, fn, task, chunks: list[list[int]]) -> list:
        """Fan ``fn(task, chunk)`` out to the pool, results in order.

        ``fn`` must be a module-level function (process pools pickle it
        by qualified name).  Dispatch is supervised (see the module
        docstring): failed/hung chunks are retried on a rebuilt pool,
        results return in canonical chunk order either way.  A single
        chunk skips the executor — and, for process pools, the
        pickling round trip — entirely, unless a fault plan or chunk
        deadline is active (the supervisor needs the future).
        """
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")
        if (
            len(chunks) <= 1
            and self.fault_plan is None
            and self.retry_policy.chunk_timeout is None
        ):
            return [fn(task, chunk) for chunk in chunks]
        return supervise_map_chunks(self, fn, task, chunks)

    def run(self, task: ReplicationTask, n_samples: int) -> ChunkResult:
        return self._run_replications(task, n_samples, self.chunk_size)

    def add_cleanup(self, callback) -> None:
        """Register a resource-release callback for :meth:`close`.

        The shared-memory layer (:mod:`repro.engine.shm`) ties exported
        CSR blocks to the backend that ships their handles: unlinking
        must happen exactly when the pool dies — earlier and in-flight
        workers lose their files, later and the blocks leak.  Callbacks
        run after the executor has shut down (workers joined), in
        registration order; a failing callback is logged (with its
        name) and cannot block the callbacks after it or mask the
        close.  Pool *rebuilds* after a crash deliberately skip
        cleanups — only :meth:`close` releases resources.
        """
        self._cleanups.append(callback)

    def _run_cleanups(self) -> None:
        cleanups, self._cleanups = self._cleanups, []
        for callback in cleanups:
            try:
                callback()
            except Exception as exc:
                name = (
                    getattr(callback, "__qualname__", None)
                    or getattr(callback, "__name__", None)
                    or repr(callback)
                )
                try:
                    logger.warning(
                        "%s cleanup callback %s failed: %s",
                        type(self).__name__,
                        name,
                        exc,
                    )
                except Exception:  # pragma: no cover - interp shutdown
                    pass

    def close(self) -> None:
        # Terminal: further run()/executor access raises rather than
        # silently resurrecting an orphan pool nothing would close.
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._run_cleanups()

    def __del__(self):  # pragma: no cover - GC-timing dependent
        # Safety net: a backend resolved per algorithm run (e.g.
        # ``DysimConfig(backend="process")``) may never see an explicit
        # close(); release its workers when the backend is collected.
        try:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._run_cleanups()
        except Exception:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadBackend(_PoolBackend):
    """Fan chunks out to a thread pool (GIL-bound; low overhead)."""

    name = "thread"

    def _make_executor(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-engine",
        )


class ProcessPoolBackend(_PoolBackend):
    """Fan chunks out to worker processes (true parallelism).

    Requested workers beyond ``os.cpu_count()`` are capped (see
    :attr:`requested_workers` for the original ask): extra processes
    cannot run anywhere, and on a single-core host a 4-worker pool
    *lost* time to pickling (``engine_scaling`` 0.79x in BENCH_v7).
    On ``cpu_count() == 1`` the pool degenerates to one worker — the
    bank's compute paths then prefer their serial shapes outright.
    """

    name = "process"
    cap_workers_at_cpu_count = True

    def _make_executor(self) -> concurrent.futures.Executor:
        return concurrent.futures.ProcessPoolExecutor(max_workers=self.workers)


#: Constructors for the spelled-out backend names (CLI / config).
BACKEND_NAMES = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessPoolBackend,
}

_default_backend: ExecutionBackend | None = None


def set_default_backend(
    backend: ExecutionBackend | str | None,
    workers: int | None = None,
    retries: int | None = None,
    chunk_timeout: float | None = None,
) -> ExecutionBackend:
    """Install the process-wide default backend and return it.

    Estimators constructed without an explicit backend use this one;
    the CLI's ``--backend/--workers`` (and ``--retries`` /
    ``--chunk-timeout``) flags route through here so every algorithm
    in a run shares one worker pool and one retry policy.
    """
    global _default_backend
    if _default_backend is not None:
        _default_backend.close()
    if backend is None:
        _default_backend = None
    else:
        _default_backend = resolve_backend(
            backend, workers, retries=retries, chunk_timeout=chunk_timeout
        )
    return get_default_backend()


def get_default_backend() -> ExecutionBackend:
    """The process-wide default backend (serial unless configured)."""
    global _default_backend
    if _default_backend is None:
        _default_backend = SerialBackend()
    return _default_backend


def resolve_backend(
    backend: ExecutionBackend | str | None,
    workers: int | None = None,
    retries: int | None = None,
    chunk_timeout: float | None = None,
    fault_plan: FaultPlan | None = None,
) -> ExecutionBackend:
    """Turn a backend spec (name, instance or None) into a backend.

    ``None`` resolves to the process-wide default; a string looks up
    :data:`BACKEND_NAMES` and forwards the supervision knobs; an
    object implementing the protocol is returned as-is (``workers``
    and the knobs are ignored for instances — they already carry
    their own policy).
    """
    if backend is None:
        return get_default_backend()
    if isinstance(backend, str):
        try:
            factory = BACKEND_NAMES[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; "
                f"expected one of {sorted(BACKEND_NAMES)}"
            ) from None
        if factory is SerialBackend:
            return SerialBackend(retries=retries, fault_plan=fault_plan)
        return factory(
            workers=workers,
            retries=retries,
            chunk_timeout=chunk_timeout,
            fault_plan=fault_plan,
        )
    if isinstance(backend, ExecutionBackend):
        return backend
    raise TypeError(f"not an execution backend: {backend!r}")
