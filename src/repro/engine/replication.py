"""The unit of parallel work: one chunk of Monte-Carlo replications.

Every execution backend — serial, threaded or multi-process — runs the
same function, :func:`run_chunk`, over the same canonical partition of
sample indices (:func:`chunk_indices`).  Two properties follow:

* **Common random numbers.**  Sample ``i`` always replays the random
  substream ``spawn_rng(rng_seed, *rng_context, i)`` no matter which
  worker executes it, so greedy marginal-gain comparisons stay
  correlated across seed groups and every backend sees the same worlds.
* **Bit-identical aggregation.**  Per-sample scalars are gathered in
  index order, and matrix accumulators (mean weights, adoption
  frequencies) are reduced chunk-by-chunk in the same canonical order
  on every backend, so ``SerialBackend`` and ``ProcessPoolBackend``
  produce floating-point-identical :class:`MonteCarloEstimate`s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.problem import IMDPPInstance, SeedGroup
from repro.diffusion.campaign import CampaignSimulator
from repro.engine.resilience import FaultStats
from repro.diffusion.models import DiffusionModel, adoption_likelihood
from repro.diffusion.repkernel import (
    LOCKSTEP_KERNELS,
    lockstep_supported,
    resolve_step_kernel,
    run_campaigns_lockstep,
)
from repro.perception.state import PerceptionState
from repro.utils.rng import spawn_rng

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ReplicationTask",
    "ChunkResult",
    "chunk_indices",
    "lockstep_applicable",
    "run_chunk",
]

#: Canonical chunk size shared by every backend.  It bounds the work
#: shipped per inter-process round trip and — because matrix
#: accumulators are reduced chunk-by-chunk — fixes the floating-point
#: reduction tree, which is what makes backends bit-identical.
#: It also caps usable parallelism at ceil(n_samples / chunk_size)
#: workers; bit-identity only needs the chunking to be *backend-
#: independent*, so callers comparing backends may pass any matching
#: ``chunk_size`` (e.g. 1 to parallelize very small sample counts).
DEFAULT_CHUNK_SIZE = 4


@dataclass
class ReplicationTask:
    """Everything a worker needs to replay one Monte-Carlo sample.

    The task is picklable: process backends ship it to workers once per
    chunk.  ``rng_seed``/``rng_context`` identify the common-random-
    numbers substream family; sample ``i`` draws from
    ``spawn_rng(rng_seed, *rng_context, i)``.

    ``step_kernel`` picks the diffusion implementation
    (:data:`repro.diffusion.repkernel.STEP_KERNEL_NAMES`; ``None`` =
    the process default).  Kernels are bit-identical, so the field
    never changes results — the lockstep names make ``run_chunk`` play
    all of a chunk's replications in one packed pass when the recipe
    allows it (:func:`lockstep_applicable`).
    """

    instance: IMDPPInstance
    model: DiffusionModel
    rng_seed: int
    rng_context: tuple
    seed_group: SeedGroup
    until_promotion: int | None = None
    restrict_users: frozenset[int] | None = None
    compute_likelihood: bool = False
    collect_weights: bool = False
    collect_adoptions: bool = False
    initial_state: PerceptionState | None = None
    start_promotion: int = 1
    step_kernel: str | None = None


@dataclass
class ChunkResult:
    """Aggregates from one chunk (or a merge of several chunks).

    ``fault_stats`` is attached by supervised backends
    (:mod:`repro.engine.resilience`) when fault handling happened
    during the producing call; it is accounting only and never feeds
    back into the numeric aggregates, which stay bit-identical to a
    fault-free run.
    """

    sigmas: np.ndarray
    restricted: np.ndarray
    likelihoods: np.ndarray
    weights_sum: np.ndarray | None = None
    adoption_sum: np.ndarray | None = None
    fault_stats: FaultStats | None = None

    @property
    def n_samples(self) -> int:
        return int(self.sigmas.size)

    @classmethod
    def merge(cls, parts: Sequence["ChunkResult"]) -> "ChunkResult":
        """Combine chunk results *in chunk order*.

        The sequential chunk-by-chunk reduction mirrors what
        ``SerialBackend`` computes, so parallel backends that merge
        their (ordered) chunk outputs here are bit-identical to serial.
        """
        parts = list(parts)
        if not parts:
            empty = np.zeros(0)
            return cls(
                sigmas=empty,
                restricted=empty.copy(),
                likelihoods=empty.copy(),
            )
        sigmas = np.concatenate([p.sigmas for p in parts])
        restricted = np.concatenate([p.restricted for p in parts])
        likelihoods = np.concatenate([p.likelihoods for p in parts])
        weights_sum: np.ndarray | None = None
        adoption_sum: np.ndarray | None = None
        fault_stats: FaultStats | None = None
        for part in parts:
            if part.fault_stats is not None:
                fault_stats = (
                    part.fault_stats.copy()
                    if fault_stats is None
                    else fault_stats.combine(part.fault_stats)
                )
            if part.weights_sum is not None:
                if weights_sum is None:
                    weights_sum = part.weights_sum.copy()
                else:
                    weights_sum += part.weights_sum
            if part.adoption_sum is not None:
                if adoption_sum is None:
                    adoption_sum = part.adoption_sum.copy()
                else:
                    adoption_sum += part.adoption_sum
        return cls(
            sigmas=sigmas,
            restricted=restricted,
            likelihoods=likelihoods,
            weights_sum=weights_sum,
            adoption_sum=adoption_sum,
            fault_stats=fault_stats,
        )


def chunk_indices(
    n_samples: int, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> list[list[int]]:
    """Partition ``range(n_samples)`` into the canonical chunks.

    ``n_samples`` must be positive: a zero-sample "estimate" would
    silently average an empty array into NaN, so it is rejected here —
    the one choke point every backend goes through.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    size = max(1, int(chunk_size))
    return [
        list(range(start, min(start + size, n_samples)))
        for start in range(0, n_samples, size)
    ]


def lockstep_applicable(task: ReplicationTask) -> bool:
    """Will ``run_chunk`` take the lockstep fast path for this task?

    True iff the task's (resolved) step kernel is a lockstep name and
    the replication recipe fits the packed pass — frozen dynamics, no
    resumed state, none of the state-materializing collectors.
    Backends consult this to coarsen the chunk partition: the lockstep
    outputs (per-sample sigmas, in index order) are partition-
    invariant, so one chunk per worker is safe and amortizes best.
    """
    return resolve_step_kernel(task.step_kernel) in LOCKSTEP_KERNELS and (
        lockstep_supported(
            task.instance,
            initial_state=task.initial_state,
            compute_likelihood=task.compute_likelihood,
            collect_weights=task.collect_weights,
            collect_adoptions=task.collect_adoptions,
        )
    )


def _run_chunk_lockstep(
    task: ReplicationTask, indices: Sequence[int], kernel: str
) -> ChunkResult:
    """One packed kernel call covering every replication of the chunk."""
    rngs = [
        spawn_rng(task.rng_seed, *task.rng_context, i) for i in indices
    ]
    outcomes = run_campaigns_lockstep(
        task.instance,
        task.seed_group,
        rngs,
        model=task.model,
        until_promotion=task.until_promotion,
        start_promotion=task.start_promotion,
        jit=kernel == "lockstep-jit",
    )
    n = len(indices)
    sigmas = np.zeros(n)
    restricted = np.zeros(n)
    restrict = None
    if task.restrict_users is not None:
        restrict = set(task.restrict_users)
    for j, outcome in enumerate(outcomes):
        sigmas[j] = outcome.sigma
        if restrict is not None:
            restricted[j] = outcome.sigma_restricted(restrict)
    return ChunkResult(
        sigmas=sigmas,
        restricted=restricted,
        likelihoods=np.zeros(n),
    )


def run_chunk(task: ReplicationTask, indices: Sequence[int]) -> ChunkResult:
    """Run the replications ``indices`` of ``task`` sequentially.

    This is the single entry point every backend dispatches — it must
    stay a module-level function so process pools can pickle it by
    qualified name.
    """
    kernel = resolve_step_kernel(task.step_kernel)
    if kernel in LOCKSTEP_KERNELS:
        if lockstep_applicable(task):
            return _run_chunk_lockstep(task, indices, kernel)
        # Dynamic perceptions / state-collecting recipes replay the
        # per-replication kernel — bit-identical, so the fallback is
        # silent by design.
        kernel = "vectorized"
    simulator = CampaignSimulator(
        task.instance, model=task.model, step_kernel=kernel
    )
    n = len(indices)
    sigmas = np.zeros(n)
    restricted = np.zeros(n)
    likelihoods = np.zeros(n)
    weights_sum: np.ndarray | None = None
    adoption_sum: np.ndarray | None = None
    restrict = None
    if task.restrict_users is not None:
        restrict = set(task.restrict_users)

    for j, i in enumerate(indices):
        rng = spawn_rng(task.rng_seed, *task.rng_context, i)
        outcome = simulator.run(
            task.seed_group,
            rng,
            until_promotion=task.until_promotion,
            initial_state=task.initial_state,
            start_promotion=task.start_promotion,
        )
        sigmas[j] = outcome.sigma
        if restrict is not None:
            restricted[j] = outcome.sigma_restricted(restrict)
        if task.compute_likelihood:
            users = restrict
            if users is None:
                users = set(range(task.instance.n_users))
            likelihoods[j] = adoption_likelihood(outcome.state, task.model, users)
        if task.collect_weights:
            if weights_sum is None:
                weights_sum = np.zeros_like(outcome.state.weights)
            weights_sum += outcome.state.weights
        if task.collect_adoptions:
            if adoption_sum is None:
                adoption_sum = np.zeros(outcome.new_adoptions.shape, dtype=float)
            adoption_sum += outcome.new_adoptions

    return ChunkResult(
        sigmas=sigmas,
        restricted=restricted,
        likelihoods=likelihoods,
        weights_sum=weights_sum,
        adoption_sum=adoption_sum,
    )
