"""Fault-tolerant chunk execution: supervised retry with CRN-exact recovery.

Every pool-backed ``map_chunks``/``run`` call routes through
:func:`supervise_map_chunks`: chunks are dispatched as individual
futures, and the supervisor detects the three failure modes a
long-lived campaign service must survive —

* **worker death** (``BrokenProcessPool``/``BrokenThreadPool``: OOM
  kill, segfault, hard ``os._exit``),
* **per-chunk exceptions** (a chunk body that raises), and
* **hung chunks** (a configurable per-dispatch deadline,
  ``RetryPolicy.chunk_timeout``).

Recovery is *exact*, not best-effort: the engine's canonical chunking
plus common random numbers (``repro.engine.replication``) make every
chunk a pure function of ``(task, chunk)`` — sample ``i`` replays the
substream ``spawn_rng(seed, *context, i)`` no matter which worker, or
which *attempt*, runs it.  The supervisor therefore re-dispatches only
the failed/unfinished chunks (rebuilding the pool first when it broke
or hung, with capped exponential backoff between rounds) and slots the
results back at their canonical chunk positions, so merged outputs —
sigma estimates, bank stacks, RR indexes, sweep rows — are
bit-identical to a fault-free run.  Shared-memory exports
(:mod:`repro.engine.shm`) survive rebuilds untouched: the parent owns
the files, and fresh workers re-attach them on the first task
unpickle; unlinking still happens only at ``backend.close()``.

When a chunk exhausts its retries at the pool level, execution
degrades down a ladder — process pool -> in-parent thread (still
deadline-supervised) -> plain serial call — with a one-time
``RuntimeWarning`` per backend, mirroring the ``packed-jit`` ->
``packed`` kernel degradation precedent.  Only the serial rung lets
exceptions propagate: a fault that survives every level is a real bug,
not an infrastructure hiccup.

Deterministic fault injection
-----------------------------
:class:`FaultPlan` describes *when* to inject *what*: explicit
``(call, chunk)`` coordinates (:class:`FaultSpec`), an
``every_nth_chunk`` modulo rule, or a seeded per-chunk probability
(``rate``) — all decided parent-side per dispatch attempt, so plans
are deterministic across runs and backends.  Plans serialize to JSON
and activate through the ``fault_plan=`` backend kwarg or the
``REPRO_FAULT_PLAN`` environment variable (inline JSON or a file
path), which is how the CI chaos leg runs whole suites with every Nth
chunk crashing once.  Injection happens *before* the chunk body runs,
so a faulted attempt performs no partial work.

Every recovery is accounted in a :class:`FaultStats` record (retries,
pool rebuilds, degradations, wall-clock lost) surfaced on
``ChunkResult``/``DysimResult``, harness diagnostics and sweep store
rows.
"""

from __future__ import annotations

import concurrent.futures
import json
import logging
import os
import threading
import time
import warnings
from concurrent.futures import BrokenExecutor
from dataclasses import asdict, dataclass, field, replace

import numpy as np

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "FaultPlan",
    "FaultSpec",
    "FaultStats",
    "InjectedFault",
    "InjectedWorkerCrash",
    "RetryPolicy",
    "default_retry_policy",
    "supervise_map_chunks",
    "supervise_serial",
]

logger = logging.getLogger(__name__)

#: Re-dispatches allowed per chunk per ladder level before degrading
#: (total attempts per level = retries + 1).  Overridable per backend
#: (``retries=``), per run (``DysimConfig.retries``, CLI ``--retries``)
#: or process-wide via ``REPRO_RETRIES``.
DEFAULT_MAX_RETRIES = 2

#: Exit code an injected crash kills the worker process with — chosen
#: to be recognizable in pool post-mortems.
CRASH_EXIT_CODE = 86

#: The degradation ladder, in order.  ``""`` is the healthy pool level.
DEGRADATION_LADDER = ("", "thread", "serial")

_FAULT_KINDS = ("crash", "exception", "hang")


class InjectedFault(RuntimeError):
    """An exception deliberately raised by a :class:`FaultPlan`."""


class InjectedWorkerCrash(InjectedFault):
    """A planned worker crash, simulated in-process.

    Raised instead of ``os._exit`` when the faulted attempt runs in
    the parent process (serial backends, thread pools, the thread rung
    of the degradation ladder) — killing the parent would end the test
    session, not simulate a worker loss.
    """


# ---------------------------------------------------------------------------
# Accounting


@dataclass
class FaultStats:
    """What the supervisor had to do to complete the calls it saw.

    Mutable and cumulative: each backend owns one instance and merges
    every supervised call into it.  Per-run deltas (``DysimResult``,
    ``ChunkResult``) are taken with :meth:`copy` + :meth:`delta`.
    """

    #: Chunk re-dispatches (one per failed chunk per retry round).
    retries: int = 0
    #: Chunks lost to worker death (broken pool or injected crash).
    crashed_chunks: int = 0
    #: Chunks that exceeded the per-dispatch deadline.
    hung_chunks: int = 0
    #: Chunks whose body raised an ordinary exception.
    chunk_errors: int = 0
    #: Times a broken/hung worker pool was torn down and respawned.
    pool_rebuilds: int = 0
    #: Times the degradation ladder engaged (retries exhausted).
    degradations: int = 0
    #: Lowest ladder level ever used ("" = never degraded).
    degraded_to: str = ""
    #: Approximate wall-clock spent on failed rounds and backoff.
    wall_seconds_lost: float = 0.0

    @property
    def total_faults(self) -> int:
        return self.crashed_chunks + self.hung_chunks + self.chunk_errors

    @property
    def activity(self) -> bool:
        """Did any fault handling happen at all?"""
        return bool(
            self.total_faults
            or self.retries
            or self.pool_rebuilds
            or self.degradations
        )

    def note_degraded(self, level: str) -> None:
        """Record a ladder step (keeps the lowest level reached)."""
        self.degradations += 1
        if DEGRADATION_LADDER.index(level) > DEGRADATION_LADDER.index(
            self.degraded_to
        ):
            self.degraded_to = level

    def copy(self) -> "FaultStats":
        return replace(self)

    def delta(self, since: "FaultStats | None") -> "FaultStats":
        """The activity recorded after the ``since`` snapshot."""
        if since is None:
            return self.copy()
        return FaultStats(
            retries=self.retries - since.retries,
            crashed_chunks=self.crashed_chunks - since.crashed_chunks,
            hung_chunks=self.hung_chunks - since.hung_chunks,
            chunk_errors=self.chunk_errors - since.chunk_errors,
            pool_rebuilds=self.pool_rebuilds - since.pool_rebuilds,
            degradations=self.degradations - since.degradations,
            degraded_to=(
                self.degraded_to
                if self.degradations > since.degradations
                else ""
            ),
            wall_seconds_lost=(
                self.wall_seconds_lost - since.wall_seconds_lost
            ),
        )

    def combine(self, other: "FaultStats") -> "FaultStats":
        """Sum of two records (for merging chunk-level attachments)."""
        merged = FaultStats(
            retries=self.retries + other.retries,
            crashed_chunks=self.crashed_chunks + other.crashed_chunks,
            hung_chunks=self.hung_chunks + other.hung_chunks,
            chunk_errors=self.chunk_errors + other.chunk_errors,
            pool_rebuilds=self.pool_rebuilds + other.pool_rebuilds,
            degradations=self.degradations + other.degradations,
            degraded_to=self.degraded_to,
            wall_seconds_lost=(
                self.wall_seconds_lost + other.wall_seconds_lost
            ),
        )
        if DEGRADATION_LADDER.index(other.degraded_to) > (
            DEGRADATION_LADDER.index(merged.degraded_to)
        ):
            merged.degraded_to = other.degraded_to
        return merged

    def as_dict(self) -> dict:
        """JSON-ready projection (diagnostics / sweep store rows)."""
        data = asdict(self)
        data["wall_seconds_lost"] = round(self.wall_seconds_lost, 4)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultStats":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


# ---------------------------------------------------------------------------
# Policy


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/deadline/backoff knobs of one backend's supervisor."""

    #: Re-dispatches allowed per chunk per ladder level.
    max_retries: int = DEFAULT_MAX_RETRIES
    #: Seconds a dispatched cohort may run before unfinished chunks are
    #: declared hung (None = no deadline; hang detection off).
    chunk_timeout: float | None = None
    #: Backoff before retry round ``k`` is ``min(cap, base * factor**k)``.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError(
                f"chunk_timeout must be > 0, got {self.chunk_timeout}"
            )

    def backoff_delay(self, round_no: int) -> float:
        if self.backoff_base <= 0:
            return 0.0
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor**round_no,
        )


def default_retry_policy(
    retries: int | None = None, chunk_timeout: float | None = None
) -> RetryPolicy:
    """Build a policy from explicit knobs with environment fallbacks.

    ``REPRO_RETRIES`` / ``REPRO_CHUNK_TIMEOUT`` fill whichever knob the
    caller left as ``None`` — the same precedence the kernel-selection
    env defaults use.
    """
    if retries is None:
        env = os.environ.get("REPRO_RETRIES")
        retries = int(env) if env else DEFAULT_MAX_RETRIES
    if chunk_timeout is None:
        env = os.environ.get("REPRO_CHUNK_TIMEOUT")
        chunk_timeout = float(env) if env else None
    return RetryPolicy(max_retries=retries, chunk_timeout=chunk_timeout)


# ---------------------------------------------------------------------------
# Fault plans


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault at explicit coordinates.

    ``call`` is the backend's supervised-call index (``None`` = any
    call), ``chunk`` the chunk index within the call.  The fault fires
    on the first ``times`` dispatch attempts of that chunk (``-1`` =
    every attempt — survives all retries, for exercising the ladder).
    """

    kind: str
    chunk: int
    call: int | None = None
    times: int = 1

    def __post_init__(self):
        if self.kind not in _FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {_FAULT_KINDS}"
            )

    def matches(self, call: int, chunk: int, attempt: int) -> bool:
        if self.chunk != chunk:
            return False
        if self.call is not None and self.call != call:
            return False
        return self.times < 0 or attempt < self.times


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault-injection schedule (serializable, seeded).

    Three trigger families, all decided in the parent per dispatch so
    the schedule is independent of worker scheduling:

    * ``faults`` — explicit :class:`FaultSpec` coordinates;
    * ``every_nth_chunk`` — every Nth chunk the backend ever
      dispatches gets one ``every_kind`` fault on its first attempt
      (the CI chaos leg's knob);
    * ``rate`` — each (call, chunk) independently faults on its first
      attempt with this probability, drawn from
      ``default_rng((seed, call, chunk))`` so the schedule is
      reproducible for a fixed seed.

    ``hang_seconds`` is how long an injected hang sleeps before the
    chunk proceeds normally — pair it with a smaller
    ``chunk_timeout`` to exercise hung-chunk recovery, or leave the
    deadline off to model a slow straggler.
    """

    faults: tuple[FaultSpec, ...] = ()
    every_nth_chunk: int | None = None
    every_kind: str = "crash"
    rate: float = 0.0
    seed: int = 0
    hang_seconds: float = 2.0

    def __post_init__(self):
        if self.every_kind not in _FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.every_kind!r}; "
                f"expected one of {_FAULT_KINDS}"
            )
        if self.every_nth_chunk is not None and self.every_nth_chunk < 1:
            raise ValueError(
                f"every_nth_chunk must be >= 1, "
                f"got {self.every_nth_chunk}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")

    def fault_for(
        self, call: int, chunk: int, global_chunk: int, attempt: int
    ) -> str | None:
        """The fault kind to inject for this dispatch, if any."""
        for spec in self.faults:
            if spec.matches(call, chunk, attempt):
                return spec.kind
        if attempt == 0:
            if (
                self.every_nth_chunk
                and (global_chunk + 1) % self.every_nth_chunk == 0
            ):
                return self.every_kind
            if self.rate > 0:
                draw = np.random.default_rng(
                    (self.seed, call, chunk)
                ).random()
                if draw < self.rate:
                    return self.every_kind
        return None

    # -- serialization -------------------------------------------------

    def to_json(self) -> str:
        data = asdict(self)
        data["faults"] = [asdict(spec) for spec in self.faults]
        return json.dumps(data, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        faults = tuple(
            FaultSpec(**spec) for spec in data.get("faults", ())
        )
        known = {f for f in cls.__dataclass_fields__} - {"faults"}
        kwargs = {k: v for k, v in data.items() if k in known}
        return cls(faults=faults, **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"invalid fault plan JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ValueError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        return cls.from_dict(data)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan ``REPRO_FAULT_PLAN`` declares, if any.

        Inline JSON (starts with ``{``) or a path to a JSON file.
        """
        raw = os.environ.get("REPRO_FAULT_PLAN", "").strip()
        if not raw:
            return None
        if not raw.startswith("{"):
            with open(raw, "r", encoding="utf-8") as handle:
                raw = handle.read()
        return cls.from_json(raw)


# ---------------------------------------------------------------------------
# Worker-side injection


@dataclass(frozen=True)
class _ChunkCall:
    """Picklable dispatch envelope: the chunk fn plus its planned fault."""

    fn: object
    fault_kind: str | None
    hang_seconds: float
    parent_pid: int


def _trigger_fault(
    kind: str, hang_seconds: float, parent_pid: int
) -> None:
    if kind == "hang":
        # A stall, not a loss: the chunk proceeds normally afterwards.
        # With a chunk_timeout the parent declares it hung and
        # re-dispatches; without one it is just a slow chunk.
        time.sleep(hang_seconds)
        return
    if kind == "crash":
        if os.getpid() != parent_pid:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedWorkerCrash(
            "planned worker crash (simulated in-process)"
        )
    raise InjectedFault("planned chunk exception")


def _resilient_chunk(call: _ChunkCall, task, chunk):
    """The function every supervised dispatch actually runs.

    Module-level so process pools can pickle it by qualified name;
    injection happens before the chunk body, so a faulted attempt
    performs no partial work (important for chunk bodies with side
    effects, e.g. sweep workers appending result rows).
    """
    if call.fault_kind is not None:
        _trigger_fault(call.fault_kind, call.hang_seconds, call.parent_pid)
    return call.fn(task, chunk)


# ---------------------------------------------------------------------------
# The supervisor


@dataclass
class _ChunkState:
    index: int
    chunk: object
    attempts: int = 0
    done: bool = False


def _warn_degraded(backend, level: str, reason: str) -> None:
    """One-time RuntimeWarning per backend, per the jit precedent."""
    if getattr(backend, "_degrade_warned", False):
        return
    backend._degrade_warned = True
    warnings.warn(
        f"{type(backend).__name__}: chunk retries exhausted ({reason}); "
        f"degrading failed chunks to {level} execution. Results remain "
        f"bit-identical — only where they run changes.",
        RuntimeWarning,
        stacklevel=4,
    )


def _plan_fault(plan, call_index, st, base):
    if plan is None:
        return None
    return plan.fault_for(
        call_index, st.index, base + st.index, st.attempts
    )


def _run_pool_round(
    backend, fn, task, cohort, plan, call_index, base, stats, results
):
    """Dispatch one cohort to the pool; classify what came back.

    Returns ``(failed_states, pool_broken, pool_hung)``.
    """
    policy = backend.retry_policy
    started = time.monotonic()
    futures: dict = {}
    failed: list[_ChunkState] = []
    broken = False
    hung = False
    for st in cohort:
        kind = _plan_fault(plan, call_index, st, base)
        call = _ChunkCall(
            fn=fn,
            fault_kind=kind,
            hang_seconds=plan.hang_seconds if plan is not None else 0.0,
            parent_pid=os.getpid(),
        )
        st.attempts += 1
        try:
            future = backend.executor.submit(
                _resilient_chunk, call, task, st.chunk
            )
        except BrokenExecutor:
            # The pool died between calls (e.g. externally killed
            # worker): everything in this cohort needs a fresh pool.
            broken = True
            stats.crashed_chunks += 1
            failed.append(st)
            continue
        futures[future] = st
    pending = set(futures)
    deadline = (
        None
        if policy.chunk_timeout is None
        else started + policy.chunk_timeout
    )
    while pending:
        if deadline is not None and time.monotonic() >= deadline:
            hung = True
            break
        timeout = (
            None
            if deadline is None
            else max(0.0, deadline - time.monotonic())
        )
        done, pending = concurrent.futures.wait(pending, timeout=timeout)
        for future in done:
            st = futures[future]
            try:
                results[st.index] = future.result()
                st.done = True
            except BrokenExecutor:
                broken = True
                stats.crashed_chunks += 1
                failed.append(st)
            except InjectedWorkerCrash:
                stats.crashed_chunks += 1
                failed.append(st)
            except Exception:
                stats.chunk_errors += 1
                failed.append(st)
        if broken:
            break
    # Whatever is still pending was lost with the pool or blew the
    # deadline; the chunks are simply abandoned here and re-dispatched
    # on the rebuilt pool.  Do NOT cancel the futures from this thread:
    # a broken ProcessPoolExecutor's management thread set_exception()s
    # the same futures in terminate_broken(), and hitting one we
    # already cancelled raises InvalidStateError there — which kills
    # that thread before it releases the executor's queue threads and
    # then deadlocks interpreter shutdown.  The coordinated
    # shutdown(cancel_futures=True) in _rebuild_pool cancels safely.
    for future in pending:
        st = futures[future]
        if broken:
            stats.crashed_chunks += 1
        else:
            stats.hung_chunks += 1
        failed.append(st)
    if failed:
        stats.wall_seconds_lost += time.monotonic() - started
    return failed, broken, hung


def _run_thread_rung(
    backend, fn, task, st, plan, call_index, base, stats
):
    """Retry one exhausted chunk in an in-parent supervised thread.

    Returns True when the chunk completed (result stored by the
    caller via ``st``); False when this rung is exhausted too.
    """
    policy = backend.retry_policy
    for round_no in range(policy.max_retries + 1):
        kind = _plan_fault(plan, call_index, st, base)
        st.attempts += 1
        box: dict = {}

        def body(kind=kind):
            try:
                if kind is not None:
                    _trigger_fault(
                        kind,
                        plan.hang_seconds if plan is not None else 0.0,
                        os.getpid(),
                    )
                box["result"] = fn(task, st.chunk)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                box["error"] = exc

        started = time.monotonic()
        thread = threading.Thread(
            target=body, daemon=True, name="repro-degraded"
        )
        thread.start()
        thread.join(policy.chunk_timeout)
        if thread.is_alive():
            stats.hung_chunks += 1
            stats.wall_seconds_lost += time.monotonic() - started
        else:
            error = box.get("error")
            if error is None:
                st.result = box["result"]
                st.done = True
                return True
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise error
            if isinstance(error, InjectedWorkerCrash):
                stats.crashed_chunks += 1
            else:
                stats.chunk_errors += 1
            stats.wall_seconds_lost += time.monotonic() - started
        if round_no < policy.max_retries:
            stats.retries += 1
            delay = policy.backoff_delay(round_no)
            if delay > 0:
                time.sleep(delay)
                stats.wall_seconds_lost += delay
    return False


def _run_degraded(
    backend, fn, task, states, plan, call_index, base, stats, results
):
    """Walk exhausted chunks down the ladder: thread, then serial."""
    _warn_degraded(backend, "thread", "pool-level retries exhausted")
    stats.note_degraded("thread")
    serial_states = []
    for st in states:
        if _run_thread_rung(
            backend, fn, task, st, plan, call_index, base, stats
        ):
            results[st.index] = st.result
        else:
            serial_states.append(st)
    if not serial_states:
        return
    stats.note_degraded("serial")
    for st in serial_states:
        # The ladder's bottom: no supervision, exceptions propagate —
        # a fault that survives process, thread AND serial execution
        # is a real bug, not an infrastructure hiccup.
        kind = _plan_fault(plan, call_index, st, base)
        st.attempts += 1
        if kind is not None:
            _trigger_fault(
                kind,
                plan.hang_seconds if plan is not None else 0.0,
                os.getpid(),
            )
        results[st.index] = fn(task, st.chunk)
        st.done = True


def supervise_map_chunks(backend, fn, task, chunks) -> list:
    """Run ``fn(task, chunk)`` per chunk under supervision.

    The drop-in body of a pool backend's ``map_chunks``: results come
    back in canonical chunk order exactly as the unsupervised path
    produced them, no matter how many retries, pool rebuilds or ladder
    degradations happened along the way.
    """
    policy = backend.retry_policy
    plan = backend.fault_plan
    stats = backend.fault_stats
    call_index, base = backend._next_supervised_call(len(chunks))
    results: list = [None] * len(chunks)
    states = [_ChunkState(i, chunk) for i, chunk in enumerate(chunks)]
    cohort = states
    exhausted: list[_ChunkState] = []
    round_no = 0
    while cohort:
        failed, broken, hung = _run_pool_round(
            backend, fn, task, cohort, plan, call_index, base, stats,
            results,
        )
        if broken or hung:
            stats.pool_rebuilds += 1
            backend._rebuild_pool(kill=hung)
        if not failed:
            break
        retry = [st for st in failed if st.attempts <= policy.max_retries]
        exhausted.extend(
            st for st in failed if st.attempts > policy.max_retries
        )
        if retry:
            stats.retries += len(retry)
            delay = policy.backoff_delay(round_no)
            if delay > 0:
                time.sleep(delay)
                stats.wall_seconds_lost += delay
        cohort = retry
        round_no += 1
    if exhausted:
        _run_degraded(
            backend, fn, task, exhausted, plan, call_index, base, stats,
            results,
        )
    return results


def supervise_serial(backend, fn, task, chunks) -> list:
    """Serial sibling of :func:`supervise_map_chunks`.

    Engaged only when a fault plan is active (an in-process exception
    is deterministic — retrying it without injection is pointless).
    Serial execution is already the ladder's bottom, so exhausted
    retries re-raise instead of degrading further.
    """
    policy = backend.retry_policy
    plan = backend.fault_plan
    stats = backend.fault_stats
    call_index, base = backend._next_supervised_call(len(chunks))
    results = []
    for index, chunk in enumerate(chunks):
        attempts = 0
        while True:
            kind = (
                plan.fault_for(call_index, index, base + index, attempts)
                if plan is not None
                else None
            )
            attempts += 1
            started = time.monotonic()
            try:
                if kind is not None:
                    _trigger_fault(kind, plan.hang_seconds, os.getpid())
                results.append(fn(task, chunk))
                break
            except InjectedWorkerCrash:
                stats.crashed_chunks += 1
                stats.wall_seconds_lost += time.monotonic() - started
                if attempts > policy.max_retries:
                    raise
            except Exception:
                stats.chunk_errors += 1
                stats.wall_seconds_lost += time.monotonic() - started
                if attempts > policy.max_retries:
                    raise
            stats.retries += 1
            delay = policy.backoff_delay(attempts - 1)
            if delay > 0:
                time.sleep(delay)
                stats.wall_seconds_lost += delay
    return results
