"""repro — Influence Maximization based on Dynamic Personal Perception.

A from-scratch reproduction of Teng et al., *"Influence Maximization
Based on Dynamic Personal Perception in Knowledge Graph"* (ICDE 2021):
the IMDPP problem, the Dysim approximation algorithm, the dynamic-
perception diffusion substrate, the compared baselines, and synthetic
analogues of the paper's datasets.

Typical usage::

    from repro import Dysim, DysimConfig, load_dataset

    instance = load_dataset("yelp", budget=80.0, n_promotions=3)
    result = Dysim(instance, DysimConfig()).run()
    print(result.seed_group, result.sigma)
"""

from repro.core.dysim import AdaptiveDysim, Dysim, DysimConfig, DysimResult
from repro.core.problem import IMDPPInstance, Seed, SeedGroup
from repro.data import (
    DATASET_NAMES,
    build_course_classes,
    dataset_statistics,
    load_dataset,
)
from repro.diffusion import (
    CampaignOutcome,
    CampaignSimulator,
    DiffusionModel,
    SigmaEstimator,
)
from repro.errors import ReproError
from repro.kg import KnowledgeGraph, MetaGraph, RelevanceEngine, Relationship
from repro.perception import DynamicsParams, PerceptionState
from repro.social import SocialNetwork

__version__ = "1.0.0"

__all__ = [
    "AdaptiveDysim",
    "CampaignOutcome",
    "CampaignSimulator",
    "DATASET_NAMES",
    "DiffusionModel",
    "Dysim",
    "DysimConfig",
    "DysimResult",
    "DynamicsParams",
    "IMDPPInstance",
    "KnowledgeGraph",
    "MetaGraph",
    "PerceptionState",
    "Relationship",
    "RelevanceEngine",
    "ReproError",
    "Seed",
    "SeedGroup",
    "SigmaEstimator",
    "SocialNetwork",
    "build_course_classes",
    "dataset_statistics",
    "load_dataset",
    "__version__",
]
