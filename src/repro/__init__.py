"""repro — Influence Maximization based on Dynamic Personal Perception.

A from-scratch reproduction of Teng et al., *"Influence Maximization
Based on Dynamic Personal Perception in Knowledge Graph"* (ICDE 2021):
the IMDPP problem, the Dysim approximation algorithm, the dynamic-
perception diffusion substrate, the compared baselines, and synthetic
analogues of the paper's datasets.

Typical usage::

    from repro import Dysim, DysimConfig, load_dataset

    instance = load_dataset("yelp", budget=80.0, n_promotions=3)
    result = Dysim(instance, DysimConfig()).run()
    print(result.seed_group, result.sigma)

Execution backends
------------------
All Monte-Carlo sigma estimation runs through the pluggable
:mod:`repro.engine` execution backends.  Select one per component::

    from repro import SigmaEstimator
    est = SigmaEstimator(instance, backend="process", workers=4)

or per algorithm run (``DysimConfig(backend="process", workers=4)``),
or process-wide (what the CLI's ``--backend/--workers`` flags do)::

    from repro.engine import set_default_backend
    set_default_backend("process", workers=4)

**Common random numbers guarantee:** Monte-Carlo sample ``i`` always
replays the random substream derived from ``(root seed, context, i)``
no matter which backend — or which worker inside a backend — executes
it, and chunked reductions follow one canonical order.  Estimates are
therefore bit-identical across ``serial``, ``thread`` and ``process``
backends, and greedy marginal-gain comparisons stay correlated.

Sigma oracles
-------------
Frozen-dynamics selection phases can swap Monte-Carlo re-simulation
for the sketch oracle (``repro.sketch``): a realization bank samples
the common-random-number worlds once and answers every sigma /
marginal-gain query by reachability-bitmask lookups — noise-free
between queries and several times faster at equal replication counts.
Select it per algorithm (``DysimConfig(oracle="sketch")``, baselines'
``oracle="sketch"``) or from the CLI (``--oracle sketch``)::

    from repro import SketchSigmaEstimator
    est = SketchSigmaEstimator(instance.frozen(), n_samples=32)

Queries sketches cannot represent (dynamic perceptions, the LT model,
likelihood / weight collection) transparently fall back to Monte-Carlo.

**Worker-count tuning:** ``workers`` defaults to ``min(8, cpu_count)``.
The ``process`` backend pays one task pickle per chunk plus a one-off
pool start-up, so it wins once replications are expensive (large
instances or high sample counts); ``thread`` is GIL-bound and only
helps when the NumPy share of a step dominates; ``serial`` is fastest
for the small instances used in tests.
"""

from repro.core.dysim import AdaptiveDysim, Dysim, DysimConfig, DysimResult
from repro.core.problem import IMDPPInstance, Seed, SeedGroup
from repro.data import (
    DATASET_NAMES,
    build_course_classes,
    dataset_statistics,
    load_dataset,
)
from repro.diffusion import (
    CampaignOutcome,
    CampaignSimulator,
    DiffusionModel,
    SigmaEstimator,
)
from repro.engine import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    SigmaCache,
    ThreadBackend,
    resolve_backend,
    set_default_backend,
)
from repro.errors import ReproError
from repro.kg import KnowledgeGraph, MetaGraph, RelevanceEngine, Relationship
from repro.perception import DynamicsParams, PerceptionState
from repro.sketch import (
    ORACLE_NAMES,
    REACH_KERNEL_NAMES,
    RealizationBank,
    SketchSigmaEstimator,
    make_sigma_estimator,
    set_default_reach_kernel,
)
from repro.social import SocialNetwork

__version__ = "1.0.0"

__all__ = [
    "AdaptiveDysim",
    "CampaignOutcome",
    "CampaignSimulator",
    "DATASET_NAMES",
    "DiffusionModel",
    "Dysim",
    "DysimConfig",
    "DysimResult",
    "DynamicsParams",
    "ExecutionBackend",
    "IMDPPInstance",
    "KnowledgeGraph",
    "MetaGraph",
    "ORACLE_NAMES",
    "PerceptionState",
    "REACH_KERNEL_NAMES",
    "ProcessPoolBackend",
    "RealizationBank",
    "Relationship",
    "RelevanceEngine",
    "ReproError",
    "Seed",
    "SeedGroup",
    "SerialBackend",
    "SigmaCache",
    "SigmaEstimator",
    "SketchSigmaEstimator",
    "SocialNetwork",
    "ThreadBackend",
    "make_sigma_estimator",
    "resolve_backend",
    "set_default_backend",
    "set_default_reach_kernel",
    "build_course_classes",
    "dataset_statistics",
    "load_dataset",
    "__version__",
]
