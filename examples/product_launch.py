"""Product launch: the paper's iPhone/AirPods/charger story end to end.

Builds the Fig. 1 ecosystem by hand — four items with complementary
and substitutable relationships — and shows how adopting items shifts
one user's personal item network, preferences and influence strengths,
then compares a bundle promotion against Dysim's staggered sequence.

Run with:  python examples/product_launch.py
"""

import numpy as np

from repro.core.dysim import Dysim, DysimConfig
from repro.core.problem import IMDPPInstance, Seed, SeedGroup
from repro.eval import evaluate_group
from repro.kg.graph import KnowledgeGraph
from repro.kg.metagraph import (
    Relationship,
    diamond_metagraph,
    shared_attribute_metagraph,
)
from repro.kg.relevance import RelevanceEngine
from repro.social.generators import community_network
from repro.social.costs import seed_costs
from repro.perception.weights import initial_weights
from repro.utils.rng import RngFactory

ITEMS = ["iPhone", "AirPods", "wireless-charger", "iPad"]


def build_instance() -> IMDPPInstance:
    """Fig. 1's KG over a 60-user community network."""
    kg = KnowledgeGraph()
    nodes = {name: kg.add_node("ITEM", name) for name in ITEMS}
    bluetooth = kg.add_node("FEATURE", "Bluetooth")
    qi = kg.add_node("FEATURE", "Qi-standard")
    apple = kg.add_node("BRAND", "Apple")
    handheld = kg.add_node("CATEGORY", "handheld-computer")
    audio = kg.add_node("CATEGORY", "audio")

    kg.add_edge(nodes["iPhone"], bluetooth, "SUPPORT")
    kg.add_edge(nodes["AirPods"], bluetooth, "SUPPORT")
    kg.add_edge(nodes["iPhone"], qi, "SUPPORT")
    kg.add_edge(nodes["wireless-charger"], qi, "SUPPORT")
    kg.add_edge(nodes["iPad"], bluetooth, "SUPPORT")
    for name in ITEMS:
        kg.add_edge(nodes[name], apple, "PRODUCED_BY")
    kg.add_edge(nodes["iPhone"], handheld, "BELONGS_TO")
    kg.add_edge(nodes["iPad"], handheld, "BELONGS_TO")
    kg.add_edge(nodes["AirPods"], audio, "BELONGS_TO")

    meta_graphs = [
        shared_attribute_metagraph(
            "m1-shared-feature", Relationship.COMPLEMENTARY,
            "FEATURE", "SUPPORT",
        ),
        diamond_metagraph(
            "m3-feature-brand", Relationship.COMPLEMENTARY,
            [("FEATURE", "SUPPORT"), ("BRAND", "PRODUCED_BY")],
        ),
        shared_attribute_metagraph(
            "ms1-shared-category", Relationship.SUBSTITUTABLE,
            "CATEGORY", "BELONGS_TO",
        ),
    ]
    relevance = RelevanceEngine(
        kg, meta_graphs, [nodes[name] for name in ITEMS]
    )

    factory = RngFactory(42)
    network = community_network(
        60, 4, factory.stream("net"), mean_strength=0.12, directed=False
    )
    rng = factory.stream("users")
    base_preference = rng.beta(2.0, 4.0, size=(60, len(ITEMS)))
    weights = initial_weights(60, relevance.n_meta, rng=rng)
    return IMDPPInstance(
        network=network,
        kg=kg,
        relevance=relevance,
        importance=np.array([2.0, 1.0, 0.8, 1.8]),  # price-like
        base_preference=base_preference,
        initial_weights=weights,
        costs=seed_costs(network, base_preference, scale=0.8),
        budget=60.0,
        n_promotions=3,
        name="apple-launch",
    )


def show_perception_shift(instance: IMDPPInstance) -> None:
    """Bob adopts iPhone + AirPods; watch Fig. 1(c) -> 1(d) happen."""
    state = instance.new_state()
    bob = 0
    pin_before = state.personal_item_network(bob)
    pref_before = state.preference_of(bob, ITEMS.index("wireless-charger"))

    state.apply_step_adoptions({bob: [ITEMS.index("iPhone"),
                                      ITEMS.index("AirPods")]})

    pin_after = state.personal_item_network(bob)
    pref_after = state.preference_of(bob, ITEMS.index("wireless-charger"))
    i, c = ITEMS.index("iPhone"), ITEMS.index("wireless-charger")
    print("Bob's perception of iPhone<->charger complementarity: "
          f"{pin_before.complementary[i, c]:.3f} -> "
          f"{pin_after.complementary[i, c]:.3f}")
    print("Bob's preference for the wireless charger:          "
          f"{pref_before:.3f} -> {pref_after:.3f}")


def main() -> None:
    instance = build_instance()
    print("=== Dynamic personal perception (Fig. 1 walkthrough) ===")
    show_perception_shift(instance)

    print("\n=== Bundle promotion vs Dysim's staggered sequence ===")
    # Naive launch: influential users promote everything at once,
    # hiring the highest-degree affordable users first.
    bundle = SeedGroup()
    spent = 0.0
    for hub in sorted(instance.network.users(),
                      key=instance.network.out_degree, reverse=True):
        for item in range(len(ITEMS)):
            cost = instance.cost(hub, item)
            if spent + cost <= instance.budget:
                bundle.add(Seed(hub, item, 1))
                spent += cost
        if spent >= instance.budget * 0.9:
            break
    sigma_bundle = evaluate_group(instance, bundle, n_samples=60)
    print(f"bundle-at-once via hub user {hub}: sigma = {sigma_bundle:.1f}")

    result = Dysim(
        instance,
        DysimConfig(n_samples_selection=8, n_samples_inner=8,
                    candidate_pool=50),
    ).run()
    sigma_dysim = evaluate_group(instance, result.seed_group, n_samples=60)
    print(f"Dysim ({len(result.seed_group)} seeds, "
          f"{len(result.markets)} markets): sigma = {sigma_dysim:.1f}")
    for seed in result.seed_group:
        print(f"  t={seed.promotion}: user {seed.user} promotes "
              f"{ITEMS[seed.item]}")


if __name__ == "__main__":
    main()
