"""Course promotion: the paper's empirical study (Sec. VI-E).

Five CS classes, 30 elective courses, budget 50, three promotions.
Compares Dysim against BGRD/HAG/PS per class and inspects the
python-vs-C++ substitutability that trips the bundle baselines.

Run with:  python examples/course_promotion.py
"""

from repro.data import build_course_classes
from repro.data.courses import COURSE_NAMES
from repro.eval import evaluate_group, run_algorithm
from repro.eval.reporting import format_table
from repro.kg.metagraph import Relationship


def show_course_relationships(instance) -> None:
    """Average relevance between famously related courses."""
    relevance = instance.relevance
    weights = instance.initial_weights
    avg_c = relevance.average_relevance(weights, Relationship.COMPLEMENTARY)
    avg_s = relevance.average_relevance(weights, Relationship.SUBSTITUTABLE)
    pairs = [
        ("deep-learning", "nlp"),
        ("python", "c++"),
        ("artificial-intelligence", "machine-learning"),
    ]
    print("course pair relationships (avg complement / substitute):")
    for a, b in pairs:
        i, j = COURSE_NAMES.index(a), COURSE_NAMES.index(b)
        print(f"  {a:26s} <-> {b:16s}  C={avg_c[i, j]:.2f}  "
              f"S={avg_s[i, j]:.2f}")


def main() -> None:
    classes = build_course_classes(budget=50.0, n_promotions=3)
    show_course_relationships(next(iter(classes.values())))

    algorithms = ("Dysim", "BGRD", "HAG", "PS")
    rows = []
    for class_id in sorted(classes):
        instance = classes[class_id]
        cells = [class_id]
        for name in algorithms:
            result = run_algorithm(name, instance, n_samples=6, seed=0)
            enrolments = evaluate_group(
                instance, result.seed_group, n_samples=40
            )
            cells.append(f"{enrolments:.1f}")
        rows.append(cells)

    print("\nexpected course selections per class "
          "(b=50, T=3, importance=1 per enrolment):")
    print(format_table(["class"] + list(algorithms), rows))


if __name__ == "__main__":
    main()
