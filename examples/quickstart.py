"""Quickstart: build a dataset, run Dysim, inspect the seed group.

Run with:  python examples/quickstart.py
"""

from repro.core.dysim import Dysim, DysimConfig
from repro.data import dataset_statistics, load_dataset
from repro.eval import evaluate_group


def main() -> None:
    # 1. Build a synthetic Yelp-like dataset: a social network, a
    #    knowledge graph with complementary/substitutable meta-graphs,
    #    item importances, base preferences and seed costs.
    instance = load_dataset("yelp", budget=80.0, n_promotions=3)
    print("Dataset:", dataset_statistics(instance))

    # 2. Run Dysim (the paper's Algorithm 1): TMI selects nominees and
    #    target markets, DRE orders the items by dynamic reachability,
    #    TDSI assigns promotional timings by substantial influence.
    config = DysimConfig(
        n_samples_selection=8,   # Monte-Carlo samples in the MCP oracle
        n_samples_inner=8,       # samples for DR / SI evaluation
        candidate_pool=60,       # nominee shortlist size
    )
    result = Dysim(instance, config).run()

    print(f"\nDysim selected {len(result.seed_group)} seeds "
          f"across {len(result.markets)} target markets "
          f"in {result.runtime_seconds:.1f}s:")
    for seed in result.seed_group:
        item_node = instance.relevance.item_nodes[seed.item]
        print(f"  promote {instance.kg.node_label(item_node)!r} "
              f"via user {seed.user} in promotion {seed.promotion}")

    # 3. Evaluate the seed group with a fresh Monte-Carlo estimator.
    sigma = evaluate_group(instance, result.seed_group, n_samples=50)
    print(f"\nImportance-aware influence spread: {sigma:.1f}")


if __name__ == "__main__":
    main()
