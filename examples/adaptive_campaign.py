"""Adaptive IM: plan each promotion after observing the previous one.

Sec. V-D: without a predefined budget allocation, adaptive Dysim
selects nominees round by round on the *observed* diffusion state,
rejects antagonistic (substitutable) picks, and defers nominees whose
substantial influence prefers the next round.

Run with:  python examples/adaptive_campaign.py
"""

from repro.core.dysim import AdaptiveDysim, Dysim, DysimConfig
from repro.data import load_dataset
from repro.eval import evaluate_group


def main() -> None:
    instance = load_dataset(
        "gowalla", scale=0.5, budget=60.0, n_promotions=4
    )
    config = DysimConfig(
        n_samples_selection=6, n_samples_inner=6, candidate_pool=30
    )

    print("=== Adaptive Dysim (observes each promotion) ===")
    adaptive = AdaptiveDysim(instance, config)
    result = adaptive.run(world_seed=0)
    for round_index, seeds in enumerate(result.rounds, start=1):
        realized = result.sigma_by_promotion[round_index - 1]
        print(f"promotion {round_index}: {len(seeds)} new seeds, "
              f"realized spread {realized:.1f}")
    print(f"spent {result.spent:.1f} / {instance.budget:.0f}, "
          f"total realized spread {result.sigma_realized:.1f}")

    print("\n=== Non-adaptive Dysim on the same instance ===")
    planned = Dysim(instance, config).run()
    sigma = evaluate_group(instance, planned.seed_group, n_samples=50)
    print(f"{len(planned.seed_group)} seeds planned up-front, "
          f"expected spread {sigma:.1f}")
    print("(The adaptive number is one realized world; the planned "
          "number is an expectation - they are not directly comparable, "
          "but both exercise the same diffusion and perception stack.)")


if __name__ == "__main__":
    main()
