"""Monte-Carlo replication throughput — lockstep vs per-replication.

Times one *worker chunk* of campaign replications — the exact unit
``run_chunk`` executes for every sigma estimate — on a large Yelp
community network, comparing the per-replication vectorized kernel
against the replication-lockstep kernel that plays the whole chunk in
one packed pass.  Both timings are **cold**: ``run_chunk`` constructs a
fresh simulator (and hence a fresh complementary-relevance cache) per
chunk in production, so each measured round replays that full cost on
both sides.  Two assertions:

* both kernels produce **bit-identical** per-replication sigmas from
  the same substreams (pinned draw-for-draw by
  ``tests/diffusion/test_step_equivalence.py``); and
* the lockstep chunk is at least 3x more replication-throughput than
  the per-replication loop at >= 10k users.  Under CI smoke
  (``REPRO_BENCH_SMOKE=1``) the scale drops to ~3k users and the floor
  relaxes to 1.5x — shared runners make wall-clock ratios noisy; the
  full 3x floor is enforced by the tier-1 run.

Environment knobs: ``REPRO_BENCH_MC_SCALE`` (dataset scale factor,
default 90 ~ 10800 users; 25 under smoke) and
``REPRO_BENCH_MC_REPLICATIONS`` (chunk size, default 64; 32 under
smoke).
"""

import time

import numpy as np

from repro.core.problem import Seed, SeedGroup
from repro.data import load_dataset
from repro.diffusion.models import DiffusionModel
from repro.engine import ReplicationTask, run_chunk
from repro.eval.reporting import format_table

from benchmarks.conftest import SMOKE, _env_int, record_bench, record_figure

MC_SCALE = _env_int("REPRO_BENCH_MC_SCALE", 25 if SMOKE else 90)
MC_REPLICATIONS = _env_int("REPRO_BENCH_MC_REPLICATIONS", 32 if SMOKE else 64)
MIN_SPEEDUP = 1.5 if SMOKE else 3.0
ROUNDS = 3


def _seed_group(instance) -> SeedGroup:
    """Twenty spread-out seeds touching every promotion.

    Twenty is a representative final-evaluation group size (Dysim
    selects a few dozen seeds at most); it also keeps per-step
    frontiers small enough that the chunk's fixed per-step costs —
    the regime the lockstep kernel amortizes — stay visible.
    """
    step = max(1, instance.n_users // 20)
    return SeedGroup(
        Seed(user, user % instance.n_items, 1 + user % instance.n_promotions)
        for user in range(0, step * 20, step)
    )


def _run_chunk_kernel(instance, group, kernel):
    """Best-of-rounds seconds per replication plus the chunk sigmas.

    Every round is one cold ``run_chunk`` call over the same substream
    family — exactly what a worker executes — so the reference loop
    pays its per-chunk simulator construction just as production does.
    Interference only ever adds time; the minimum over identical
    rounds is the robust wall-clock estimator, and the sigmas are
    round-independent.
    """
    task = ReplicationTask(
        instance=instance,
        model=DiffusionModel.INDEPENDENT_CASCADE,
        rng_seed=0,
        rng_context=("mc-bench",),
        seed_group=group,
        step_kernel=kernel,
    )
    indices = list(range(MC_REPLICATIONS))
    best_seconds = float("inf")
    sigmas = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        result = run_chunk(task, indices)
        seconds = (time.perf_counter() - started) / MC_REPLICATIONS
        best_seconds = min(best_seconds, seconds)
        sigmas = result.sigmas
    return best_seconds, sigmas


def test_mc_diffusion_scaling():
    # The final-evaluation regime: frozen perceptions, association
    # coins live, a whole chunk of replications per worker.
    instance = load_dataset("yelp", scale=float(MC_SCALE)).frozen()
    group = _seed_group(instance)

    loop_seconds, loop_sigmas = _run_chunk_kernel(
        instance, group, "vectorized"
    )
    packed_seconds, packed_sigmas = _run_chunk_kernel(
        instance, group, "lockstep"
    )
    speedup = loop_seconds / packed_seconds if packed_seconds > 0 else 0.0

    rows = [
        ["vectorized-loop", f"{loop_seconds * 1e3:.2f}", "1.00"],
        ["lockstep", f"{packed_seconds * 1e3:.2f}", f"{speedup:.2f}"],
    ]
    footer = (
        f"users={instance.n_users} arcs={instance.network.n_arcs} "
        f"replications={MC_REPLICATIONS} smoke={int(SMOKE)}"
    )
    record_figure(
        "mc_diffusion_scaling",
        format_table(["kernel", "ms_per_replication", "speedup"], rows)
        + "\n"
        + footer,
    )
    record_bench(
        "mc_diffusion_scaling", packed_seconds * 1e3, speedup,
        scale=MC_SCALE, replications=MC_REPLICATIONS,
    )

    # Bit identity: same substreams, same realizations, both kernels.
    assert np.array_equal(loop_sigmas, packed_sigmas)

    assert speedup >= MIN_SPEEDUP, (
        f"lockstep chunk kernel only {speedup:.2f}x faster than the "
        f"per-replication loop ({loop_seconds * 1e3:.2f}ms vs "
        f"{packed_seconds * 1e3:.2f}ms per replication; "
        f"floor {MIN_SPEEDUP}x)"
    )
