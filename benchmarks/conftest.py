"""Shared benchmark plumbing.

The figure/table benchmarks are thin *spec + render* pairs over
``repro.sweep``: each test resolves its declarative
:class:`~repro.sweep.SweepSpec` (:func:`run_spec`), runs whatever
``(config, seed)`` runs the canonical store under
``benchmarks/results/store/`` does not yet hold — on a fully populated
checkout that is a pure resume hit, zero new runs — and regenerates its
txt artifact from the store (:func:`render_figures`).  Shape assertions
read the stored rows, not ad-hoc return values, so ``repro sweep
run/render`` and the benchmarks can never drift apart.

CI smoke (``REPRO_BENCH_SMOKE=1`` plus the ``REPRO_BENCH_*_SAMPLES``
overrides) lowers the replication counts; those counts participate in
the config hash, so smoke rows are computed fresh and coexist with the
committed full-scale rows instead of superseding them.

The scaling benchmarks additionally append to the ``bench`` perf
trajectory (:func:`record_bench`), which ``repro sweep bench``
snapshots into ``BENCH_v9.json`` for the CI regression gate.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.data import load_dataset
from repro.sweep import (
    ResultStore,
    get_spec,
    record_bench_series,
    render_spec,
    run_sweep,
    scale_from_env,
)
from repro.sweep.render import _rows_for
from repro.sweep.specs import FIG9_SCALES

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The canonical committed result store (one jsonl per spec).
STORE = ResultStore(RESULTS_DIR / "store")

#: Replication counts with CI smoke overrides applied; part of every
#: run's config hash (see repro.sweep.specs).
SCALE = scale_from_env()


def _env_int(name: str, default: int) -> int:
    """Replication-count override from the environment (CI smoke)."""
    value = os.environ.get(name)
    return int(value) if value else default


#: CI smoke mode: reduced replication counts make the Monte-Carlo
#: estimates noisier, so figure-shape assertions are relaxed to sanity
#: checks; the series are still recorded and uploaded as artifacts.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def record_figure(name: str, text: str) -> None:
    """Print a figure's series and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_spec(name: str):
    """Run a builtin spec's pending runs (resume-aware).

    Returns ``(spec, rows)`` with the ok-rows in canonical expansion
    order; fails the benchmark if any run tombstoned.
    """
    spec = get_spec(name, SCALE)
    report = run_sweep(spec, STORE)
    assert report.n_failed == 0, report.summary()
    return spec, _rows_for(spec, STORE)


def render_figures(spec) -> None:
    """Regenerate the spec's txt artifacts from the store."""
    for artifact, text in render_spec(spec, STORE).items():
        record_figure(artifact, text)


def series(rows, algorithm: str, x_key: str) -> dict:
    """``{params[x_key]: sigma}`` for one algorithm's stored rows."""
    return {
        row.params[x_key]: row.payload["sigma"]
        for row in rows
        if row.params["algorithm"] == algorithm
    }


def record_bench(series_name: str, value_ms: float, speedup: float,
                 **context) -> None:
    """Append one scaling measurement to the bench perf trajectory."""
    record_bench_series(
        STORE, series_name, value_ms, speedup,
        {**context, "smoke": SMOKE},
    )


@pytest.fixture(scope="session")
def dataset_cache():
    """Memoized dataset builds shared across benchmark modules."""
    cache: dict[tuple, object] = {}

    def get(name: str, **overrides):
        key = (name, tuple(sorted(overrides.items())))
        if key not in cache:
            scale = overrides.pop("scale", FIG9_SCALES.get(name, 1.0))
            cache[key] = load_dataset(name, scale=scale, **overrides)
        return cache[key]

    return get
