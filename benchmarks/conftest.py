"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures at
reproduction scale (see EXPERIMENTS.md for the paper-vs-here parameter
mapping) and writes the series it would plot to
``benchmarks/results/<figure>.txt`` in addition to printing it.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.data import load_dataset

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    """Replication-count override from the environment (CI smoke)."""
    value = os.environ.get(name)
    return int(value) if value else default


#: CI smoke mode: reduced replication counts make the Monte-Carlo
#: estimates noisier, so figure-shape assertions are relaxed to sanity
#: checks; the series are still recorded and uploaded as artifacts.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Reproduction-scale sweep parameters (paper values in comments).
FIG8_BUDGETS = (50.0, 75.0, 100.0, 125.0)     # paper: same
FIG8_PROMOTIONS = (1, 2, 3)                   # paper: same
FIG9_BUDGETS = (100.0, 300.0, 500.0)          # paper: 100..500 step 100
FIG9_PROMOTIONS = (1, 5, 10)                  # paper: 1,5,10,20,40
FIG9_T = 10                                   # paper: same
FIG9_COST_SCALE = 4.0                         # keeps seed counts realistic
ALGO_SAMPLES = _env_int("REPRO_BENCH_ALGO_SAMPLES", 5)
EVAL_SAMPLES = _env_int("REPRO_BENCH_EVAL_SAMPLES", 30)
#: Fig. 12 gives Dysim extra samples (its dense class graphs are noisy).
FIG12_DYSIM_SAMPLES = _env_int("REPRO_BENCH_DYSIM_SAMPLES", 12)

#: Tight algorithm knobs for the large-figure sweeps.
FAST_KWARGS = {
    # Nominee selection is the noise-sensitive phase (the paper runs
    # M=100); give it more samples while the inner DR/SI loops stay at
    # the shared default.
    "Dysim": {"candidate_pool": 70, "n_samples_selection": 15},
    "BGRD": {"candidate_users": 25},
    "HAG": {"candidate_pairs": 40},
    "PS": {},
    "DRHGA": {"candidate_users": 20, "users_per_item": 2},
}

#: Dataset scale factors for the large figures (users shrink ~1/1000
#: of the originals already; these shrink further for sweep breadth).
FIG9_SCALES = {"yelp": 1.0, "amazon": 0.45, "douban": 0.35, "gowalla": 0.5}


def record_figure(name: str, text: str) -> None:
    """Print a figure's series and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def dataset_cache():
    """Memoized dataset builds shared across benchmark modules."""
    cache: dict[tuple, object] = {}

    def get(name: str, **overrides):
        key = (name, tuple(sorted(overrides.items())))
        if key not in cache:
            scale = overrides.pop("scale", FIG9_SCALES.get(name, 1.0))
            cache[key] = load_dataset(name, scale=scale, **overrides)
        return cache[key]

    return get
