"""Table III — statistics of the recruited course classes.

Regenerates the class-size table of the empirical study (Sec. VI-E)
from the synthetic course-selection scenario, which reuses the
published user and edge counts exactly.
"""

from repro.data import build_course_classes
from repro.data.courses import COURSE_CLASSES
from repro.eval.reporting import format_table

from benchmarks.conftest import record_figure


def test_table3_class_statistics(benchmark):
    classes = benchmark.pedantic(
        build_course_classes, rounds=1, iterations=1
    )
    rows = []
    for spec in COURSE_CLASSES:
        instance = classes[spec.class_id]
        rows.append(
            [
                spec.class_id,
                instance.n_users,
                instance.network.n_arcs,
                instance.n_items,
            ]
        )
    record_figure(
        "table3_classes",
        format_table(["class", "n_users", "n_edges", "n_courses"], rows),
    )
    # Table III row checks: published class sizes.
    assert [r[1] for r in rows] == [33, 26, 22, 20, 20]
    for instance in classes.values():
        assert instance.n_items == 30
