"""Table III — statistics of the recruited course classes.

Regenerates the class-size table of the empirical study (Sec. VI-E)
from the synthetic course-selection scenario — which reuses the
published user and edge counts exactly — as a thin spec + render pair
over the ``table3`` sweep spec.
"""

from benchmarks.conftest import render_figures, run_spec


def test_table3_class_statistics(benchmark):
    spec, rows = benchmark.pedantic(
        run_spec, args=("table3",), rounds=1, iterations=1
    )
    render_figures(spec)
    # Table III row checks: published class sizes.
    assert [row.payload["n_users"] for row in rows] == [33, 26, 22, 20, 20]
    for row in rows:
        assert row.payload["n_items"] == 30
