"""Fig. 12 — the course-promotion empirical study.

Paper setup (Sec. VI-E): five recruited classes, 30 elective courses,
b=50, T=3; compares Dysim, BGRD, HAG and PS by the number of students
selecting courses.  Expected shape: Dysim induces the most enrolments
in every class, BGRD/HAG middle, PS last.

Thin spec + render pair over the ``fig12`` sweep spec (class x
algorithm; Dysim gets extra samples because the dense little class
graphs make the MC oracle noisy).
"""

from repro.sweep.specs import FIG12_ALGORITHMS

from benchmarks.conftest import SMOKE, render_figures, run_spec


def test_fig12_course_study(benchmark):
    spec, rows = benchmark.pedantic(
        run_spec, args=("fig12",), rounds=1, iterations=1
    )
    render_figures(spec)
    table: dict[str, dict[str, float]] = {}
    for row in rows:
        table.setdefault(row.params["class_id"], {})[
            row.params["algorithm"]
        ] = row.payload["sigma"]
    # Shape: Dysim leads (or ties within noise) in most classes.  The
    # paper reports 5/5 wins; at reproduction scale PS's deterministic
    # path scores are unusually strong on the dense class graphs
    # (EXPERIMENTS.md "known deviations"), so we require a majority of
    # near-wins rather than a sweep.
    wins = sum(
        1
        for class_id in table
        if table[class_id]["Dysim"]
        >= max(table[class_id][n] for n in FIG12_ALGORITHMS) * 0.75
    )
    # Smoke mode cuts replication counts, so the shape check drops to
    # a sanity bound; the full run keeps the paper's majority demand.
    assert wins >= (1 if SMOKE else 3)
