"""Fig. 12 — the course-promotion empirical study.

Paper setup (Sec. VI-E): five recruited classes, 30 elective courses,
b=50, T=3; compares Dysim, BGRD, HAG and PS by the number of students
selecting courses.  Expected shape: Dysim induces the most enrolments
in every class, BGRD/HAG middle, PS last.
"""

from repro.data import build_course_classes
from repro.eval.harness import evaluate_group, run_algorithm
from repro.eval.reporting import format_table

from benchmarks.conftest import (
    ALGO_SAMPLES,
    EVAL_SAMPLES,
    FIG12_DYSIM_SAMPLES,
    SMOKE,
    record_figure,
)

ALGORITHMS = ("Dysim", "BGRD", "HAG", "PS")


def _run_study():
    classes = build_course_classes(budget=50.0, n_promotions=3)
    table: dict[str, dict[str, float]] = {}
    for class_id, instance in classes.items():
        table[class_id] = {}
        for name in ALGORITHMS:
            # The dense little class graphs are near-critical, so the
            # MC oracle is noisy; Dysim gets a few more samples (the
            # classes are tiny, this stays cheap).
            n_samples = (
                FIG12_DYSIM_SAMPLES if name == "Dysim" else ALGO_SAMPLES
            )
            result = run_algorithm(
                name, instance, n_samples=n_samples, seed=0
            )
            # Course importance is 1, so sigma literally counts
            # student-course selections (the figure's y-axis).
            table[class_id][name] = evaluate_group(
                instance, result.seed_group, n_samples=EVAL_SAMPLES
            )
    return table


def test_fig12_course_study(benchmark):
    table = benchmark.pedantic(_run_study, rounds=1, iterations=1)
    rows = [
        [class_id] + [f"{table[class_id][name]:.1f}" for name in ALGORITHMS]
        for class_id in sorted(table)
    ]
    record_figure(
        "fig12_course_study",
        format_table(["class"] + list(ALGORITHMS), rows),
    )
    # Shape: Dysim leads (or ties within noise) in most classes.  The
    # paper reports 5/5 wins; at reproduction scale PS's deterministic
    # path scores are unusually strong on the dense class graphs
    # (EXPERIMENTS.md "known deviations"), so we require a majority of
    # near-wins rather than a sweep.
    wins = sum(
        1
        for class_id in table
        if table[class_id]["Dysim"]
        >= max(table[class_id][n] for n in ALGORITHMS) * 0.75
    )
    # Smoke mode cuts replication counts, so the shape check drops to
    # a sanity bound; the full run keeps the paper's majority demand.
    assert wins >= (1 if SMOKE else 3)
