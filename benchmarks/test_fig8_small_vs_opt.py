"""Fig. 8 — comparison with optimal solutions on the small sample.

Paper setup: 100-user Amazon samples; (a) sigma vs budget
b in {50, 75, 100, 125} at T=2; (b) sigma vs T in {1, 2, 3} at b=100.
Expected shape: Dysim closest to OPT, all baselines below.
"""


from repro.data import load_dataset
from repro.eval.harness import sweep
from repro.eval.reporting import format_series

from benchmarks.conftest import (
    ALGO_SAMPLES,
    EVAL_SAMPLES,
    FIG8_BUDGETS,
    FIG8_PROMOTIONS,
    record_figure,
)

ALGORITHMS = ["OPT", "Dysim", "BGRD", "HAG", "PS", "DRHGA"]
KWARGS = {
    "OPT": {"universe_size": 8, "max_seeds": 4, "n_samples": 6},
    "Dysim": {"candidate_pool": 40},
    "BGRD": {"candidate_users": 25},
    "HAG": {"candidate_pairs": 40},
    "DRHGA": {"candidate_users": 20, "users_per_item": 2},
}


def _best_by(rows, algorithm):
    return {r.x: r.sigma for r in rows if r.algorithm == algorithm}


def test_fig8a_sigma_vs_budget(benchmark):
    instances = {
        budget: load_dataset("amazon-small", budget=budget, n_promotions=2)
        for budget in FIG8_BUDGETS
    }
    rows = benchmark.pedantic(
        sweep,
        args=(instances, ALGORITHMS),
        kwargs=dict(
            n_samples=ALGO_SAMPLES,
            eval_samples=EVAL_SAMPLES,
            algorithm_kwargs=KWARGS,
        ),
        rounds=1,
        iterations=1,
    )
    record_figure(
        "fig8a_small_vs_opt_budget",
        format_series("Fig 8(a) sigma, amazon-small, T=2", "b", rows),
    )
    opt = _best_by(rows, "OPT")
    dysim = _best_by(rows, "Dysim")
    for budget in FIG8_BUDGETS:
        # OPT's bounded search and MC noise allow small inversions, but
        # Dysim must stay in OPT's neighbourhood (paper: "closest").
        assert dysim[budget] >= 0.4 * opt[budget]


def test_fig8b_sigma_vs_promotions(benchmark):
    instances = {
        t: load_dataset("amazon-small", budget=100.0, n_promotions=t)
        for t in FIG8_PROMOTIONS
    }
    rows = benchmark.pedantic(
        sweep,
        args=(instances, ALGORITHMS),
        kwargs=dict(
            n_samples=ALGO_SAMPLES,
            eval_samples=EVAL_SAMPLES,
            algorithm_kwargs=KWARGS,
        ),
        rounds=1,
        iterations=1,
    )
    record_figure(
        "fig8b_small_vs_opt_promotions",
        format_series("Fig 8(b) sigma, amazon-small, b=100", "T", rows),
    )
    dysim = _best_by(rows, "Dysim")
    baselines = [
        _best_by(rows, name) for name in ("BGRD", "HAG", "PS", "DRHGA")
    ]
    # At the largest T, Dysim leads every baseline (Fig. 8(b) shape).
    t_max = max(FIG8_PROMOTIONS)
    assert all(dysim[t_max] >= b[t_max] * 0.9 for b in baselines)
