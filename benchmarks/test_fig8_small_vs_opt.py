"""Fig. 8 — comparison with optimal solutions on the small sample.

Paper setup: 100-user Amazon samples; (a) sigma vs budget
b in {50, 75, 100, 125} at T=2; (b) sigma vs T in {1, 2, 3} at b=100.
Expected shape: Dysim closest to OPT, all baselines below.

Thin spec + render pair over the ``fig8a`` / ``fig8b`` sweep specs
(see repro.sweep.specs for the parameter space).
"""

from repro.sweep.specs import FIG8_BUDGETS, FIG8_PROMOTIONS

from benchmarks.conftest import render_figures, run_spec, series


def test_fig8a_sigma_vs_budget(benchmark):
    spec, rows = benchmark.pedantic(
        run_spec, args=("fig8a",), rounds=1, iterations=1
    )
    render_figures(spec)
    opt = series(rows, "OPT", "budget")
    dysim = series(rows, "Dysim", "budget")
    for budget in FIG8_BUDGETS:
        # OPT's bounded search and MC noise allow small inversions, but
        # Dysim must stay in OPT's neighbourhood (paper: "closest").
        assert dysim[budget] >= 0.4 * opt[budget]


def test_fig8b_sigma_vs_promotions(benchmark):
    spec, rows = benchmark.pedantic(
        run_spec, args=("fig8b",), rounds=1, iterations=1
    )
    render_figures(spec)
    dysim = series(rows, "Dysim", "n_promotions")
    baselines = [
        series(rows, name, "n_promotions")
        for name in ("BGRD", "HAG", "PS", "DRHGA")
    ]
    # At the largest T, Dysim leads every baseline (Fig. 8(b) shape).
    t_max = max(FIG8_PROMOTIONS)
    assert all(dysim[t_max] >= b[t_max] * 0.9 for b in baselines)
