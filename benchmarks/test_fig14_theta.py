"""Fig. 14 — sensitivity to the common-user threshold theta in TMI.

Paper setup: theta sweeps (dataset-scaled values) at b=1000, T=20.
Expected shape: a mild interior optimum — very small theta groups too
many markets (promotional durations starve), very large theta lets
overlapping markets promote substitutable items to common users.

Reproduction scale: theta in {0, 2, 5, 10} on Yelp and Amazon at
b=100, T=10.
"""

import pytest

from repro.eval.harness import evaluate_group, run_algorithm
from repro.eval.reporting import format_table

from benchmarks.conftest import (
    ALGO_SAMPLES,
    EVAL_SAMPLES,
    FIG9_COST_SCALE,
    record_figure,
)

THETAS = (0, 2, 5, 10)


def _run_theta_sweep(dataset_cache, dataset):
    instance = dataset_cache(
        dataset, budget=400.0, n_promotions=10, cost_scale=FIG9_COST_SCALE
    )
    values = {}
    for theta in THETAS:
        result = run_algorithm(
            "Dysim",
            instance,
            n_samples=ALGO_SAMPLES,
            candidate_pool=40,
            theta=theta,
            use_fallbacks=False,
        )
        values[theta] = evaluate_group(
            instance, result.seed_group, n_samples=EVAL_SAMPLES
        )
    return values


@pytest.mark.parametrize("dataset", ["yelp", "amazon"])
def test_fig14_theta_sensitivity(benchmark, dataset_cache, dataset):
    values = benchmark.pedantic(
        _run_theta_sweep, args=(dataset_cache, dataset),
        rounds=1, iterations=1,
    )
    rows = [[theta, f"{sigma:.1f}"] for theta, sigma in sorted(values.items())]
    record_figure(
        f"fig14_theta_{dataset}",
        format_table(["theta", "sigma"], rows),
    )
    # Shape: theta only perturbs sigma mildly (Fig. 14 curves are flat
    # to within ~20% in the paper).
    sigmas = list(values.values())
    assert min(sigmas) >= max(sigmas) * 0.5
