"""Fig. 14 — sensitivity to the common-user threshold theta in TMI.

Paper setup: theta sweeps (dataset-scaled values) at b=1000, T=20.
Expected shape: a mild interior optimum — very small theta groups too
many markets (promotional durations starve), very large theta lets
overlapping markets promote substitutable items to common users.

Thin spec + render pair over the ``fig14_yelp`` / ``fig14_amazon``
sweep specs (theta in {0, 2, 5, 10} at b=400, T=10).
"""

import pytest

from benchmarks.conftest import render_figures, run_spec


@pytest.mark.parametrize("dataset", ["yelp", "amazon"])
def test_fig14_theta_sensitivity(benchmark, dataset):
    spec, rows = benchmark.pedantic(
        run_spec, args=(f"fig14_{dataset}",), rounds=1, iterations=1
    )
    render_figures(spec)
    # Shape: theta only perturbs sigma mildly (Fig. 14 curves are flat
    # to within ~20% in the paper).
    sigmas = [row.payload["sigma"] for row in rows]
    assert min(sigmas) >= max(sigmas) * 0.5
