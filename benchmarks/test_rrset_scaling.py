"""RR-set oracle scaling — selection phase vs. the sketch bank.

Runs Dysim's selection phase (nominee extraction by MCP greedy) on the
100k-user scale-bench synthetic under the sketch and RR-set oracles
and records the wall-clock series to
``benchmarks/results/rrset_scaling.txt``.

Both estimators are *warmed* with one singleton query before timing,
so construction (probability-skeleton enumeration plus bank coin
flips / RR sampling) lands in the ``build`` column and the timed
region isolates what the oracles actually disagree about: the sketch
answers each greedy gain by per-candidate forward-reachability stacks
over the full graph, while the RR index answers it by popcounts over
packed membership words — selection cost independent of the graph
once sampled (DESIGN.md §6c).  Build seconds are recorded alongside
so the one-off cost stays visible.

Assertion: RR-set selection is at least 3x faster than the sketch
bank (1.5x under ``REPRO_BENCH_SMOKE``, where the graph shrinks to
10k users and both phases run in milliseconds).  Observed margins are
~45x at 100k users and ~14x at smoke scale — the gap widens with the
graph, which is the point.

Environment knobs: ``REPRO_BENCH_RRSET_SAMPLES`` (RR sets, default
1024), ``REPRO_BENCH_RRSET_WORLDS`` (sketch replications, default 12
— the harness default), ``REPRO_BENCH_RRSET_POOL`` (default 150) and
``REPRO_BENCH_RRSET_SCALE`` (user-count multiplier on ``synth-100k``;
defaults 1.0, or 0.1 under smoke).
"""

import os
import time

from repro.core.dysim.nominees import select_nominees
from repro.core.problem import Seed, SeedGroup
from repro.eval.reporting import format_table
from repro.sketch import SketchSigmaEstimator
from repro.sketch.rrset import RRSetSigmaEstimator
from repro.utils.rng import RngFactory

from benchmarks.conftest import SMOKE, _env_int, record_bench, record_figure

RRSET_SAMPLES = _env_int("REPRO_BENCH_RRSET_SAMPLES", 1024)
RRSET_WORLDS = _env_int("REPRO_BENCH_RRSET_WORLDS", 12)
RRSET_POOL = _env_int("REPRO_BENCH_RRSET_POOL", 150)
RRSET_SCALE = float(
    os.environ.get("REPRO_BENCH_RRSET_SCALE") or (0.1 if SMOKE else 1.0)
)


def _warmed_selection(instance, estimator):
    """(build_seconds, selection, select_seconds) for one oracle."""
    started = time.perf_counter()
    estimator.estimate(SeedGroup([Seed(0, 0, 1)]))
    build = time.perf_counter() - started
    started = time.perf_counter()
    selection = select_nominees(instance, estimator, RRSET_POOL)
    return build, selection, time.perf_counter() - started


def test_rrset_selection_speedup(dataset_cache):
    instance = dataset_cache("synth-100k", scale=RRSET_SCALE)
    frozen = instance.frozen()

    sketch = SketchSigmaEstimator(
        frozen, n_samples=RRSET_WORLDS, rng_factory=RngFactory(0)
    )
    rrset = RRSetSigmaEstimator(
        frozen, n_samples=RRSET_SAMPLES, rng_factory=RngFactory(0)
    )

    sk_build, sk_selection, sk_seconds = _warmed_selection(frozen, sketch)
    rr_build, rr_selection, rr_seconds = _warmed_selection(frozen, rrset)
    speedup = sk_seconds / rr_seconds if rr_seconds > 0 else 0.0

    rows = [
        [
            "sketch",
            f"{sk_build:.3f}",
            f"{sk_seconds:.3f}",
            "1.00",
            len(sk_selection.nominees),
            sk_selection.n_oracle_calls,
        ],
        [
            "rrset",
            f"{rr_build:.3f}",
            f"{rr_seconds:.3f}",
            f"{speedup:.2f}",
            len(rr_selection.nominees),
            rr_selection.n_oracle_calls,
        ],
    ]
    headers = [
        "oracle",
        "build_seconds",
        "select_seconds",
        "speedup_vs_sketch",
        "nominees",
        "oracle_calls",
    ]
    footer = (
        f"users={frozen.n_users} rr_samples={RRSET_SAMPLES} "
        f"worlds={RRSET_WORLDS} pool={RRSET_POOL} "
        "(build = skeleton + bank coins / RR sampling, timed separately)"
    )
    record_figure(
        "rrset_scaling", format_table(headers, rows) + "\n" + footer
    )
    record_bench(
        "rrset_scaling", rr_seconds * 1e3, speedup,
        users=frozen.n_users, rr_samples=RRSET_SAMPLES,
        worlds=RRSET_WORLDS, pool=RRSET_POOL,
    )

    # Both oracles must produce meaningful, budget-feasible selections.
    for selection in (sk_selection, rr_selection):
        assert selection.nominees, "selection phase returned no nominees"
        assert selection.total_cost <= frozen.budget + 1e-9

    # The acceptance bar: >= 3x selection-phase speedup at full scale.
    # The smoke graph is 10x smaller and both phases run in
    # milliseconds, so the floor relaxes to 1.5x there (observed ~14x).
    floor = 1.5 if SMOKE else 3.0
    assert speedup >= floor, (
        f"rrset selection too slow: sketch {sk_seconds:.3f}s vs "
        f"rrset {rr_seconds:.3f}s ({speedup:.1f}x < {floor}x)"
    )
