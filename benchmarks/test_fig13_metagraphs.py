"""Fig. 13 — sensitivity to the number of meta-graphs.

Paper setup: sigma of Dysim with 1, 2 or 3 (complementary) meta-graphs
on all four datasets at b=100, T=3.  Expected shape: more meta-graphs
capture perceptions better and raise the influence spread.

Thin spec + render pair over the ``fig13_<dataset>`` sweep specs.
"""

import pytest

from repro.sweep.specs import FIG13_DATASETS

from benchmarks.conftest import render_figures, run_spec


@pytest.mark.parametrize("dataset", list(FIG13_DATASETS))
def test_fig13_metagraph_sensitivity(benchmark, dataset):
    spec, rows = benchmark.pedantic(
        run_spec, args=(f"fig13_{dataset}",), rounds=1, iterations=1
    )
    render_figures(spec)
    values = {row.params["n_meta"]: row.payload["sigma"] for row in rows}
    # Shape: 3 meta-graphs never collapse below the 1-meta-graph run.
    assert values[3] >= values[1] * 0.7
