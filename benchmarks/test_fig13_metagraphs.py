"""Fig. 13 — sensitivity to the number of meta-graphs.

Paper setup: sigma of Dysim with 1, 2 or 3 (complementary) meta-graphs
on all four datasets at b=100, T=3.  Expected shape: more meta-graphs
capture perceptions better and raise the influence spread.
"""

import pytest

from repro.data import load_dataset
from repro.eval.harness import evaluate_group, run_algorithm
from repro.eval.reporting import format_table

from benchmarks.conftest import (
    ALGO_SAMPLES,
    EVAL_SAMPLES,
    FIG9_SCALES,
    record_figure,
)


def _run_metagraph_sweep(dataset):
    values = {}
    for n_meta in (1, 2, 3):
        instance = load_dataset(
            dataset,
            scale=FIG9_SCALES.get(dataset, 0.5),
            budget=100.0,
            n_promotions=3,
            n_meta_complementary=n_meta,
        )
        result = run_algorithm(
            "Dysim",
            instance,
            n_samples=ALGO_SAMPLES,
            candidate_pool=40,
        )
        values[n_meta] = evaluate_group(
            instance, result.seed_group, n_samples=EVAL_SAMPLES
        )
    return values


@pytest.mark.parametrize(
    "dataset", ["yelp", "gowalla", "amazon", "douban"]
)
def test_fig13_metagraph_sensitivity(benchmark, dataset):
    values = benchmark.pedantic(
        _run_metagraph_sweep, args=(dataset,), rounds=1, iterations=1
    )
    rows = [[k, f"{v:.1f}"] for k, v in sorted(values.items())]
    record_figure(
        f"fig13_metagraphs_{dataset}",
        format_table(["n_meta_graphs", "sigma"], rows),
    )
    # Shape: 3 meta-graphs never collapse below the 1-meta-graph run.
    assert values[3] >= values[1] * 0.7
