"""Frontier-kernel scaling — vectorized vs scalar campaign steps.

Times one full campaign realization (the innermost unit of every
Monte-Carlo sigma estimate) on a large synthetic community network
under both step kernels and records the series to
``benchmarks/results/frontier_scaling.txt``.  Two assertions:

* both kernels produce **bit-identical** realizations (spread and
  adoption matrix) from the same substream — the CSR refactor's core
  guarantee, also pinned draw-for-draw by
  ``tests/diffusion/test_step_equivalence.py``; and
* the vectorized kernel is at least 2x faster per serial realization.
  Under CI smoke (``REPRO_BENCH_SMOKE=1``) the floor relaxes to 1.3x —
  the measured margin is ~2.3-2.6x, but shared, saturated runners make
  wall-clock ratios noisy (cf. ``test_engine_scaling``, which skips
  its absolute-speedup assert under smoke entirely); the full 2x floor
  is enforced by the tier-1 run.

Environment knobs: ``REPRO_BENCH_FRONTIER_SCALE`` (dataset scale
factor, default 25 ~ 3000 users) and ``REPRO_BENCH_FRONTIER_SAMPLES``
(realizations per kernel, default 12).
"""

import time

import numpy as np

from repro.core.problem import Seed, SeedGroup
from repro.diffusion.campaign import CampaignSimulator
from repro.data import load_dataset
from repro.eval.reporting import format_table
from repro.utils.rng import spawn_rng

from benchmarks.conftest import SMOKE, _env_int, record_bench, record_figure

FRONTIER_SCALE = _env_int("REPRO_BENCH_FRONTIER_SCALE", 8 if SMOKE else 25)
FRONTIER_SAMPLES = _env_int("REPRO_BENCH_FRONTIER_SAMPLES", 12)
MIN_SPEEDUP = 1.3 if SMOKE else 2.0


def _seed_group(instance) -> SeedGroup:
    """Forty spread-out seeds touching every promotion."""
    step = max(1, instance.n_users // 40)
    return SeedGroup(
        Seed(user, user % instance.n_items, 1 + user % instance.n_promotions)
        for user in range(0, step * 40, step)
    )


def _run_kernel(instance, group, kernel, rounds=3):
    """Best-of-rounds seconds per realization plus a fingerprint.

    Interference (GC pauses, suite load when tier-1 runs the full
    benchmark set first) only ever adds time, so the minimum over a
    few identical rounds is the robust wall-clock estimator.  Every
    round replays the same substreams, so the fingerprint is
    round-independent.
    """
    simulator = CampaignSimulator(instance, step_kernel=kernel)
    simulator.run(group, spawn_rng(0, "warm"))  # warm caches / freeze
    best_seconds = float("inf")
    for _ in range(rounds):
        sigmas = []
        adoptions = np.zeros((instance.n_users, instance.n_items))
        started = time.perf_counter()
        for i in range(FRONTIER_SAMPLES):
            outcome = simulator.run(group, spawn_rng(0, "frontier", i))
            sigmas.append(outcome.sigma)
            adoptions += outcome.new_adoptions
        seconds = (time.perf_counter() - started) / FRONTIER_SAMPLES
        best_seconds = min(best_seconds, seconds)
    return best_seconds, sigmas, adoptions


def test_frontier_scaling():
    # The Lemma-1 regime every selection phase estimates in: frozen
    # perceptions, association coins live.  This is the hottest path
    # in the repo (greedy runs thousands of these realizations).
    instance = load_dataset("yelp", scale=float(FRONTIER_SCALE)).frozen()
    group = _seed_group(instance)

    scalar_seconds, scalar_sigmas, scalar_adoptions = _run_kernel(
        instance, group, "scalar"
    )
    fast_seconds, fast_sigmas, fast_adoptions = _run_kernel(
        instance, group, "vectorized"
    )
    speedup = scalar_seconds / fast_seconds if fast_seconds > 0 else 0.0

    rows = [
        ["scalar", f"{scalar_seconds * 1e3:.2f}", "1.00"],
        ["vectorized", f"{fast_seconds * 1e3:.2f}", f"{speedup:.2f}"],
    ]
    footer = (
        f"users={instance.n_users} arcs={instance.network.n_arcs} "
        f"samples={FRONTIER_SAMPLES} smoke={int(SMOKE)}"
    )
    record_figure(
        "frontier_scaling",
        format_table(["kernel", "ms_per_realization", "speedup"], rows)
        + "\n"
        + footer,
    )
    record_bench(
        "frontier_scaling", fast_seconds * 1e3, speedup,
        scale=FRONTIER_SCALE, samples=FRONTIER_SAMPLES,
    )

    # Bit identity: same substreams, same realizations, both kernels.
    assert scalar_sigmas == fast_sigmas
    assert np.array_equal(scalar_adoptions, fast_adoptions)

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized frontier kernel only {speedup:.2f}x faster than "
        f"the scalar reference ({scalar_seconds * 1e3:.2f}ms vs "
        f"{fast_seconds * 1e3:.2f}ms per realization; "
        f"floor {MIN_SPEEDUP}x)"
    )
