"""Sketch oracle scaling — selection phase, MC vs. sketch wall-clock.

Runs Dysim's selection phase (nominee extraction by MCP greedy, the
repro's hottest loop) on the yelp instance under both sigma oracles at
*equal replication counts* and records the wall-clock series to
``benchmarks/results/sketch_scaling.txt``.  The sketch timing includes
realization-bank construction — the honest end-to-end cost of the
first query.

Assertion: the sketch oracle is at least 3x faster than Monte-Carlo
re-simulation for the selection phase.  The speedup is algorithmic
(bitmask lookups vs. re-simulation), not parallelism-dependent, so it
is asserted in smoke mode too; observed ratios are typically far
higher (~100x at 12 replications).

Environment knobs: ``REPRO_BENCH_SKETCH_SAMPLES`` (default 12) and
``REPRO_BENCH_SKETCH_POOL`` (default 150).
"""

import time

from repro.core.dysim.nominees import select_nominees
from repro.diffusion.montecarlo import SigmaEstimator
from repro.sketch import SketchSigmaEstimator
from repro.eval.reporting import format_table
from repro.utils.rng import RngFactory

from benchmarks.conftest import _env_int, record_bench, record_figure

SKETCH_SAMPLES = _env_int("REPRO_BENCH_SKETCH_SAMPLES", 12)
SKETCH_POOL = _env_int("REPRO_BENCH_SKETCH_POOL", 150)


def _timed_selection(instance, estimator):
    started = time.perf_counter()
    selection = select_nominees(instance, estimator, SKETCH_POOL)
    return selection, time.perf_counter() - started


def test_sketch_selection_speedup(dataset_cache):
    instance = dataset_cache("yelp")
    frozen = instance.frozen()

    mc_estimator = SigmaEstimator(
        frozen, n_samples=SKETCH_SAMPLES, rng_factory=RngFactory(0)
    )
    sketch_estimator = SketchSigmaEstimator(
        frozen, n_samples=SKETCH_SAMPLES, rng_factory=RngFactory(0)
    )

    mc_selection, mc_seconds = _timed_selection(instance, mc_estimator)
    sketch_selection, sketch_seconds = _timed_selection(
        instance, sketch_estimator
    )
    speedup = mc_seconds / sketch_seconds if sketch_seconds > 0 else 0.0

    rows = [
        [
            "mc",
            f"{mc_seconds:.3f}",
            "1.00",
            len(mc_selection.nominees),
            mc_selection.n_oracle_calls,
            f"{mc_selection.frozen_value:.2f}",
        ],
        [
            "sketch",
            f"{sketch_seconds:.3f}",
            f"{speedup:.2f}",
            len(sketch_selection.nominees),
            sketch_selection.n_oracle_calls,
            f"{sketch_selection.frozen_value:.2f}",
        ],
    ]
    headers = [
        "oracle",
        "seconds",
        "speedup_vs_mc",
        "nominees",
        "oracle_calls",
        "frozen_value",
    ]
    footer = (
        f"samples={SKETCH_SAMPLES} pool={SKETCH_POOL} "
        "(sketch time includes bank construction)"
    )
    record_figure(
        "sketch_scaling", format_table(headers, rows) + "\n" + footer
    )
    record_bench(
        "sketch_scaling", sketch_seconds * 1e3, speedup,
        samples=SKETCH_SAMPLES, pool=SKETCH_POOL,
    )

    # Both oracles must produce meaningful, budget-feasible selections.
    for selection in (mc_selection, sketch_selection):
        assert selection.nominees, "selection phase returned no nominees"
        assert selection.total_cost <= instance.budget + 1e-9

    # The acceptance bar: >= 3x at equal replication counts.  The
    # sketch pays bank construction once and then answers each of the
    # hundreds of MCP marginals by bitmask lookups, so the observed
    # margin is typically 30-150x — wide enough that even saturated CI
    # runners cannot flake it, so it stays asserted under smoke.
    assert speedup >= 3.0, (
        f"sketch selection too slow: mc {mc_seconds:.3f}s vs "
        f"sketch {sketch_seconds:.3f}s ({speedup:.1f}x)"
    )
