"""Table II — statistics of the four dataset analogues.

Regenerates the paper's dataset-statistics table for the synthetic
analogues (scaled ~1/1000; see DESIGN.md §4) as a thin spec + render
pair over the ``table2`` sweep spec, whose ``stats`` pseudo-algorithm
stores the full statistics row per dataset.
"""

from benchmarks.conftest import render_figures, run_spec


def test_table2_dataset_statistics(benchmark):
    spec, rows = benchmark.pedantic(
        run_spec, args=("table2",), rounds=1, iterations=1
    )
    render_figures(spec)
    stats = {row.params["dataset"]: row.payload["stats"] for row in rows}
    # Table II structural signatures that must survive the scaling.
    assert stats["amazon"]["directed_friendship"]
    assert not stats["yelp"]["directed_friendship"]
    # Yelp has the strongest ties, Douban the weakest (Table II row).
    assert (
        stats["yelp"]["avg_initial_influence"]
        > stats["gowalla"]["avg_initial_influence"]
        > stats["douban"]["avg_initial_influence"]
    )
    # User-count ordering: yelp < gowalla < amazon < douban.
    assert (
        stats["yelp"]["n_users"]
        < stats["gowalla"]["n_users"]
        < stats["amazon"]["n_users"]
        < stats["douban"]["n_users"]
    )
