"""Table II — statistics of the four dataset analogues.

Regenerates the paper's dataset-statistics table for the synthetic
analogues (scaled ~1/1000; see DESIGN.md §4).  The benchmark measures
dataset construction time (KG + network + relevance precomputation).
"""

from repro.data import dataset_statistics, load_dataset
from repro.eval.reporting import format_table

from benchmarks.conftest import record_figure

COLUMNS = (
    "dataset",
    "n_node_types",
    "n_nodes",
    "n_users",
    "n_items",
    "n_edge_types",
    "n_edges",
    "n_friendships",
    "directed_friendship",
    "avg_initial_influence",
    "avg_item_importance",
)


def build_all():
    return {
        name: load_dataset(name)
        for name in ("douban", "gowalla", "yelp", "amazon")
    }


def test_table2_dataset_statistics(benchmark):
    instances = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    for name, instance in instances.items():
        stats = dataset_statistics(instance)
        rows.append([stats[c] for c in COLUMNS])
    record_figure(
        "table2_datasets", format_table(list(COLUMNS), rows)
    )
    # Table II structural signatures that must survive the scaling.
    stats = {n: dataset_statistics(i) for n, i in instances.items()}
    assert stats["amazon"]["directed_friendship"]
    assert not stats["yelp"]["directed_friendship"]
    # Yelp has the strongest ties, Douban the weakest (Table II row).
    assert (
        stats["yelp"]["avg_initial_influence"]
        > stats["gowalla"]["avg_initial_influence"]
        > stats["douban"]["avg_initial_influence"]
    )
    # User-count ordering: yelp < gowalla < amazon < douban.
    assert (
        stats["yelp"]["n_users"]
        < stats["gowalla"]["n_users"]
        < stats["amazon"]["n_users"]
        < stats["douban"]["n_users"]
    )
