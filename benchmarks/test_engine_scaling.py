"""Engine scaling — serial vs. parallel Monte-Carlo wall-clock.

Measures one sigma estimate (the repo's hottest path) on the yelp
instance under every execution backend and records the wall-clock
series to ``benchmarks/results/engine_scaling.txt``.  Two assertions:

* every backend's estimate is **bit-identical** to serial (the
  common-random-numbers + canonical-chunking guarantee), and
* with >= 4 CPU cores, the process backend with 4 workers is at least
  2x faster than serial.  On smaller machines (or in smoke mode) the
  speedup is recorded but not asserted — a process pool cannot beat
  serial without cores to run on.

Environment knobs: ``REPRO_BENCH_ENGINE_SAMPLES`` (default 320) and
``REPRO_BENCH_ENGINE_WORKERS`` (default 4).
"""

import os
import time

import numpy as np

from repro.core.problem import Seed, SeedGroup
from repro.diffusion.montecarlo import SigmaEstimator
from repro.engine import ProcessPoolBackend, SerialBackend, ThreadBackend
from repro.eval.reporting import format_table
from repro.utils.rng import RngFactory

from benchmarks.conftest import SMOKE, _env_int, record_bench, record_figure

ENGINE_SAMPLES = _env_int("REPRO_BENCH_ENGINE_SAMPLES", 320)
ENGINE_WORKERS = _env_int("REPRO_BENCH_ENGINE_WORKERS", 4)


def _seed_group(instance) -> SeedGroup:
    """A spread-out ten-seed group touching every promotion."""
    step = max(1, instance.n_users // 10)
    return SeedGroup(
        Seed(user, user % instance.n_items, 1 + user % instance.n_promotions)
        for user in range(0, step * 10, step)
    )


def _timed_estimate(instance, group, backend):
    estimator = SigmaEstimator(
        instance,
        n_samples=ENGINE_SAMPLES,
        rng_factory=RngFactory(7),
        backend=backend,
    )
    started = time.perf_counter()
    estimate = estimator.estimate(group, collect_adoptions=True)
    return estimate, time.perf_counter() - started


def test_engine_scaling(dataset_cache):
    instance = dataset_cache("yelp")
    group = _seed_group(instance)

    serial, serial_seconds = _timed_estimate(instance, group, SerialBackend())
    rows = [["serial", 1, f"{serial_seconds:.3f}", "1.00"]]

    thread = ThreadBackend(workers=ENGINE_WORKERS)
    # Process workers are capped at the core count (requesting more
    # only added pickling overhead — the BENCH_v7 0.79x regression on a
    # 1-core runner); the *effective* count is what the table and the
    # bench context report.
    process = ProcessPoolBackend(workers=ENGINE_WORKERS)
    # Warm the process pool outside the timed region: pool start-up is
    # a one-off cost, not part of the steady-state throughput story.
    # Workers spawn on demand, so park one overlapping task per worker
    # to force the whole pool up — a single no-op would start just one.
    list(process.executor.map(time.sleep, [0.05] * process.workers))

    results = {}
    try:
        for backend in (thread, process):
            estimate, seconds = _timed_estimate(instance, group, backend)
            results[backend.name] = (estimate, seconds)
            speedup = serial_seconds / seconds if seconds > 0 else 0.0
            rows.append(
                [backend.name, backend.workers, f"{seconds:.3f}", f"{speedup:.2f}"]
            )
    finally:
        thread.close()
        process.close()

    headers = ["backend", "workers", "seconds", "speedup_vs_serial"]
    footer = f"samples={ENGINE_SAMPLES} cpu_count={os.cpu_count()}"
    record_figure("engine_scaling", format_table(headers, rows) + "\n" + footer)
    _, process_recorded = results["process"]
    record_bench(
        # Recorded for the trajectory but NOT gate-tracked: pool-vs-
        # serial ratios depend on the runner's core count.
        "engine_scaling", process_recorded * 1e3,
        serial_seconds / process_recorded if process_recorded > 0 else 0.0,
        workers=process.workers, requested_workers=ENGINE_WORKERS,
        samples=ENGINE_SAMPLES, cpu_count=os.cpu_count() or 1,
    )

    # Bit-identity across backends (the engine's core guarantee).
    for name, (estimate, _) in results.items():
        assert estimate.sigma == serial.sigma, name
        assert estimate.sigma_std == serial.sigma_std, name
        same = np.array_equal(estimate.adoption_frequency, serial.adoption_frequency)
        assert same, name

    # Throughput: only meaningful with real cores to fan out to.
    _, process_seconds = results["process"]
    if (os.cpu_count() or 1) >= 4 and not SMOKE:
        assert serial_seconds / process_seconds >= 2.0, (
            f"process backend too slow: serial {serial_seconds:.3f}s vs "
            f"process {process_seconds:.3f}s with {ENGINE_WORKERS} workers"
        )
