"""Fig. 11 — comparison of target-market promoting orders.

Paper setup (Sec. VI-D): order overlapping target markets by AE
(antagonistic extent), PF (profitability), SZ (size), RMS (relative
market share) or RD (random).  Expected shape: AE and PF usually lead;
SZ, RMS and RD trail because they ignore substitutable relationships.

Reproduction scale: Yelp and Amazon analogues, b in {60, 100}, T=10.
"""

import pytest

from repro.core.dysim.markets import MARKET_ORDERS
from repro.eval.harness import evaluate_group, run_algorithm
from repro.eval.reporting import format_table

from benchmarks.conftest import (
    ALGO_SAMPLES,
    EVAL_SAMPLES,
    FIG9_COST_SCALE,
    record_figure,
)


def _run_orders(dataset_cache, dataset, budgets):
    rows = []
    for budget in budgets:
        instance = dataset_cache(
            dataset,
            budget=budget,
            n_promotions=10,
            cost_scale=FIG9_COST_SCALE,
        )
        for order in MARKET_ORDERS:
            result = run_algorithm(
                "Dysim",
                instance,
                n_samples=ALGO_SAMPLES,
                candidate_pool=40,
                market_order=order,
                # Grouping threshold of 0 maximizes how often ordering
                # matters (every overlapping market pair is grouped),
                # and the shared fallbacks are disabled so the figure
                # compares the *orders*, not a common fallback.
                theta=0,
                use_fallbacks=False,
            )
            sigma = evaluate_group(
                instance, result.seed_group, n_samples=EVAL_SAMPLES
            )
            rows.append([f"b={budget:.0f}", order, f"{sigma:.1f}"])
    return rows


@pytest.mark.parametrize("dataset", ["yelp", "amazon"])
def test_fig11_market_orders(benchmark, dataset_cache, dataset):
    rows = benchmark.pedantic(
        _run_orders,
        args=(dataset_cache, dataset, (300.0, 500.0)),
        rounds=1,
        iterations=1,
    )
    record_figure(
        f"fig11_market_orders_{dataset}",
        format_table(["setting", "order", "sigma"], rows),
    )
    # Shape: AE is never far behind the best order at any setting.
    by_setting: dict[str, dict[str, float]] = {}
    for setting, order, sigma in rows:
        by_setting.setdefault(setting, {})[order] = float(sigma)
    for values in by_setting.values():
        assert values["AE"] >= max(values.values()) * 0.6
