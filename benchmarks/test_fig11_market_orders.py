"""Fig. 11 — comparison of target-market promoting orders.

Paper setup (Sec. VI-D): order overlapping target markets by AE
(antagonistic extent), PF (profitability), SZ (size), RMS (relative
market share) or RD (random).  Expected shape: AE and PF usually lead;
SZ, RMS and RD trail because they ignore substitutable relationships.

Thin spec + render pair over the ``fig11_yelp`` / ``fig11_amazon``
sweep specs (budget x order at T=10, theta=0, fallbacks off — see
repro.sweep.specs for why).
"""

import pytest

from benchmarks.conftest import render_figures, run_spec


@pytest.mark.parametrize("dataset", ["yelp", "amazon"])
def test_fig11_market_orders(benchmark, dataset):
    spec, rows = benchmark.pedantic(
        run_spec, args=(f"fig11_{dataset}",), rounds=1, iterations=1
    )
    render_figures(spec)
    # Shape: AE is never far behind the best order at any setting.
    by_setting: dict[float, dict[str, float]] = {}
    for row in rows:
        by_setting.setdefault(row.params["budget"], {})[
            row.params["order"]
        ] = row.payload["sigma"]
    for values in by_setting.values():
        assert values["AE"] >= max(values.values()) * 0.6
