"""Selection-layer scaling — batched packed gains vs. scalar boolean.

Runs the coverage gain evaluation at the heart of nominee selection on
the yelp realization bank two ways: the boolean scalar reference
(:class:`~repro.sketch.greedy.CoverageEvaluator`, one candidate per
call against a ``(n_worlds, n_pairs)`` boolean mask) and the unified
selection layer's packed kernel
(:class:`~repro.core.selection.CoverageGainOracle`, whole candidate
blocks against packed ``uint64`` words).  Both produce bit-identical
gains; the benchmark records the wall-clock series and the bank-mask
memory ratio to ``benchmarks/results/selection_scaling.txt``.

Assertions: batched packed evaluation is at least 3x faster than the
scalar path (1.5x under CI smoke, where runner contention makes
wall-clock floors flaky — same policy as the frontier benchmark), and
the packed reachability stacks use at most 1/4 of the boolean bytes
(~1/8 once users fill their 64-bit words; yelp-at-scale keeps some
padding).

Environment knobs: ``REPRO_BENCH_SELECTION_WORLDS`` (default 12),
``REPRO_BENCH_SELECTION_POOL`` (default 150) and
``REPRO_BENCH_SELECTION_ROUNDS`` (default 4).
"""

import time

import numpy as np

from repro.core.dysim.nominees import rank_candidates
from repro.core.selection import CoverageGainOracle
from repro.sketch import CoverageEvaluator, RealizationBank
from repro.eval.reporting import format_table

from benchmarks.conftest import SMOKE, _env_int, record_bench, record_figure

SELECTION_WORLDS = _env_int("REPRO_BENCH_SELECTION_WORLDS", 12)
SELECTION_POOL = _env_int("REPRO_BENCH_SELECTION_POOL", 150)
SELECTION_ROUNDS = _env_int("REPRO_BENCH_SELECTION_ROUNDS", 4)
MIN_SPEEDUP = 1.5 if SMOKE else 3.0


def _greedy_rounds_scalar(bank, pairs):
    evaluator = CoverageEvaluator(bank)
    picks = []
    for _ in range(SELECTION_ROUNDS):
        gains = np.array([evaluator.gain(pair) for pair in pairs])
        best = int(gains.argmax())
        picks.append(best)
        evaluator.add(pairs[best])
    return picks, evaluator.value


def _greedy_rounds_batched(bank, universe):
    oracle = CoverageGainOracle(bank)
    picks = []
    for _ in range(SELECTION_ROUNDS):
        gains = oracle.gains(universe)
        best = int(gains.argmax())
        picks.append(best)
        oracle.commit(universe[best], float(gains[best]))
    return picks, oracle.value


def test_selection_scaling(dataset_cache):
    instance = dataset_cache("yelp")
    frozen = instance.frozen()
    bank = RealizationBank(
        frozen, n_worlds=SELECTION_WORLDS, rng_seed=0
    )
    universe = rank_candidates(instance, SELECTION_POOL)
    pairs = [bank.pair_index(user, item) for user, item in universe]

    # Warm the per-world reachability memos once so both paths time
    # the gain evaluation, not the BFS.
    for pair in pairs:
        bank.stacked_reach_packed(pair)

    started = time.perf_counter()
    scalar_picks, scalar_value = _greedy_rounds_scalar(bank, pairs)
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched_picks, batched_value = _greedy_rounds_batched(bank, universe)
    batched_seconds = time.perf_counter() - started

    speedup = (
        scalar_seconds / batched_seconds if batched_seconds > 0 else 0.0
    )
    evaluations = SELECTION_ROUNDS * len(universe)
    packed_bytes = sum(
        bank.stacked_reach_packed(pair).nbytes for pair in pairs
    )
    bool_bytes = bank.n_worlds * bank.skeleton.n_pairs * len(pairs)
    memory_ratio = bool_bytes / packed_bytes if packed_bytes else 0.0

    rows = [
        [
            "scalar-bool",
            f"{scalar_seconds * 1e3:.1f}",
            "1.00",
            f"{bool_bytes / 1e6:.1f}",
        ],
        [
            "batched-packed",
            f"{batched_seconds * 1e3:.1f}",
            f"{speedup:.2f}",
            f"{packed_bytes / 1e6:.1f}",
        ],
    ]
    footer = (
        f"worlds={SELECTION_WORLDS} pool={len(universe)} "
        f"rounds={SELECTION_ROUNDS} gain_evaluations={evaluations} "
        f"mask_memory_ratio={memory_ratio:.1f}x smoke={int(SMOKE)}"
    )
    record_figure(
        "selection_scaling",
        format_table(
            ["kernel", "ms_total", "speedup", "stack_megabytes"], rows
        )
        + "\n"
        + footer,
    )
    record_bench(
        "selection_scaling", batched_seconds * 1e3, speedup,
        worlds=SELECTION_WORLDS, pool=len(universe),
        rounds=SELECTION_ROUNDS,
    )

    # Both kernels are the same function — identical picks and value.
    assert batched_picks == scalar_picks
    assert batched_value == scalar_value

    # Packed words cut the reachability-stack memory (>=4x with
    # padding; ~8x once every 64-slot word is full).
    assert packed_bytes * 4 <= bool_bytes

    assert speedup >= MIN_SPEEDUP, (
        f"batched packed gains too slow: scalar {scalar_seconds:.3f}s "
        f"vs batched {batched_seconds:.3f}s ({speedup:.1f}x)"
    )
