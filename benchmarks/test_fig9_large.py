"""Fig. 9 — comparisons on the large dataset analogues.

Paper setup (Sec. VI-B): sigma vs budget at T=10 on Yelp/Amazon/Douban
(9a-9c; HAG excluded from Douban for runtime, as in the paper), sigma
vs number of promotions at b=500 on Yelp/Amazon (9e-9f).  Expected
shape: Dysim largest everywhere with the gap growing in T; baselines
flatten for large T.

Reproduction scale: budgets {100, 300, 500} with cost_scale=4, T up to
20, datasets at the scales in ``FIG9_SCALES`` (see EXPERIMENTS.md).
"""

import pytest

from repro.eval.harness import sweep
from repro.eval.reporting import format_series

from benchmarks.conftest import (
    ALGO_SAMPLES,
    EVAL_SAMPLES,
    FAST_KWARGS,
    FIG9_BUDGETS,
    FIG9_COST_SCALE,
    FIG9_PROMOTIONS,
    FIG9_T,
    record_figure,
)

BASELINES = ["BGRD", "HAG", "PS", "DRHGA"]


def _series(rows, algorithm):
    return {r.x: r.sigma for r in rows if r.algorithm == algorithm}


def _run_budget_sweep(dataset_cache, name, algorithms):
    instances = {
        budget: dataset_cache(
            name,
            budget=budget,
            n_promotions=FIG9_T,
            cost_scale=FIG9_COST_SCALE,
        )
        for budget in FIG9_BUDGETS
    }
    return sweep(
        instances,
        algorithms,
        n_samples=ALGO_SAMPLES,
        eval_samples=EVAL_SAMPLES,
        algorithm_kwargs=FAST_KWARGS,
    )


@pytest.mark.parametrize(
    "figure,dataset,algorithms",
    [
        ("fig9a_sigma_budget_yelp", "yelp", ["Dysim"] + BASELINES),
        ("fig9b_sigma_budget_amazon", "amazon", ["Dysim"] + BASELINES),
        # 9(c): HAG excluded (paper: > 12h on Douban).
        ("fig9c_sigma_budget_douban", "douban",
         ["Dysim", "BGRD", "PS", "DRHGA"]),
    ],
)
def test_fig9_budget_sweeps(benchmark, dataset_cache, figure, dataset, algorithms):
    rows = benchmark.pedantic(
        _run_budget_sweep,
        args=(dataset_cache, dataset, algorithms),
        rounds=1,
        iterations=1,
    )
    record_figure(
        figure,
        format_series(
            f"Fig 9 sigma, {dataset}, T={FIG9_T}", "b", rows
        ),
    )
    if figure == "fig9b_sigma_budget_amazon":
        time_rows = format_series(
            f"Fig 9(d) time (s), amazon, T={FIG9_T}", "b", rows,
            value_attr="runtime_seconds",
        )
        record_figure("fig9d_time_budget_amazon", time_rows)
    dysim = _series(rows, "Dysim")
    for name in algorithms[1:]:
        baseline = _series(rows, name)
        # Dysim wins at the largest budget (Fig. 9(a)-(c) shape).
        b_max = max(FIG9_BUDGETS)
        assert dysim[b_max] >= baseline[b_max] * 0.9


def _run_promotion_sweep(dataset_cache, name):
    instances = {
        t: dataset_cache(
            name,
            budget=max(FIG9_BUDGETS),
            n_promotions=t,
            cost_scale=FIG9_COST_SCALE,
        )
        for t in FIG9_PROMOTIONS
    }
    return sweep(
        instances,
        ["Dysim"] + BASELINES,
        n_samples=ALGO_SAMPLES,
        eval_samples=EVAL_SAMPLES,
        algorithm_kwargs=FAST_KWARGS,
    )


@pytest.mark.parametrize(
    "figure,dataset",
    [
        ("fig9e_sigma_promotions_yelp", "yelp"),
        ("fig9f_sigma_promotions_amazon", "amazon"),
    ],
)
def test_fig9_promotion_sweeps(benchmark, dataset_cache, figure, dataset):
    rows = benchmark.pedantic(
        _run_promotion_sweep,
        args=(dataset_cache, dataset),
        rounds=1,
        iterations=1,
    )
    record_figure(
        figure,
        format_series(
            f"Fig 9 sigma, {dataset}, b={max(FIG9_BUDGETS):.0f}", "T", rows
        ),
    )
    if figure == "fig9f_sigma_promotions_amazon":
        record_figure(
            "fig9g_time_promotions_amazon",
            format_series(
                "Fig 9(g) time (s), amazon, b=500", "T", rows,
                value_attr="runtime_seconds",
            ),
        )
    dysim = _series(rows, "Dysim")
    t_max = max(FIG9_PROMOTIONS)
    for name in BASELINES:
        assert dysim[t_max] >= _series(rows, name)[t_max] * 0.9


def test_fig9h_scalability(benchmark, dataset_cache):
    """Fig. 9(h): Dysim runtime across all four datasets."""
    from repro.eval.harness import run_algorithm

    def run_all():
        results = {}
        for name in ("yelp", "gowalla", "amazon", "douban"):
            instance = dataset_cache(
                name,
                budget=max(FIG9_BUDGETS),
                n_promotions=FIG9_T,
                cost_scale=FIG9_COST_SCALE,
            )
            result = run_algorithm(
                "Dysim", instance, n_samples=ALGO_SAMPLES,
                **FAST_KWARGS["Dysim"],
            )
            results[name] = (instance.n_users, result.runtime_seconds)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["dataset  n_users  dysim_seconds"]
    for name, (n_users, seconds) in results.items():
        lines.append(f"{name:8s} {n_users:7d} {seconds:10.2f}")
    record_figure("fig9h_scalability", "\n".join(lines))
    assert all(seconds > 0 for _, seconds in results.values())
