"""Fig. 9 — comparisons on the large dataset analogues.

Paper setup (Sec. VI-B): sigma vs budget at T=10 on Yelp/Amazon/Douban
(9a-9c; HAG excluded from Douban for runtime, as in the paper), sigma
vs number of promotions at b=500 on Yelp/Amazon (9e-9f), Dysim runtime
across all four datasets (9h).  Expected shape: Dysim largest
everywhere with the gap growing in T; baselines flatten for large T.

Thin spec + render pairs over the ``fig9a``..``fig9h`` sweep specs;
the timing companions 9(d) and 9(g) render from the same stored rows
as their sigma figures.
"""

import pytest

from repro.sweep.specs import FIG9_BUDGETS, FIG9_PROMOTIONS

from benchmarks.conftest import render_figures, run_spec, series

BASELINES = ["BGRD", "HAG", "PS", "DRHGA"]


@pytest.mark.parametrize(
    "spec_name,algorithms",
    [
        ("fig9a", ["Dysim"] + BASELINES),
        ("fig9b", ["Dysim"] + BASELINES),
        # 9(c): HAG excluded (paper: > 12h on Douban).
        ("fig9c", ["Dysim", "BGRD", "PS", "DRHGA"]),
    ],
)
def test_fig9_budget_sweeps(benchmark, spec_name, algorithms):
    spec, rows = benchmark.pedantic(
        run_spec, args=(spec_name,), rounds=1, iterations=1
    )
    render_figures(spec)
    dysim = series(rows, "Dysim", "budget")
    for name in algorithms[1:]:
        baseline = series(rows, name, "budget")
        # Dysim wins at the largest budget (Fig. 9(a)-(c) shape).
        b_max = max(FIG9_BUDGETS)
        assert dysim[b_max] >= baseline[b_max] * 0.9


@pytest.mark.parametrize("spec_name", ["fig9e", "fig9f"])
def test_fig9_promotion_sweeps(benchmark, spec_name):
    spec, rows = benchmark.pedantic(
        run_spec, args=(spec_name,), rounds=1, iterations=1
    )
    render_figures(spec)
    dysim = series(rows, "Dysim", "n_promotions")
    t_max = max(FIG9_PROMOTIONS)
    for name in BASELINES:
        assert dysim[t_max] >= series(rows, name, "n_promotions")[t_max] * 0.9


def test_fig9h_scalability(benchmark):
    """Fig. 9(h): Dysim runtime across all four datasets."""
    spec, rows = benchmark.pedantic(
        run_spec, args=("fig9h",), rounds=1, iterations=1
    )
    render_figures(spec)
    assert all(row.payload["runtime_seconds"] > 0 for row in rows)
