"""Realization-bank scaling — world-packed BFS vs. per-world BFS.

Times the computation of packed reachability stacks for a nominee-pool
candidate block on the yelp realization bank two ways: the per-world
reference kernel (one Python BFS per ``ReachabilitySketch``, M runs
per candidate — the pre-PR-5 path) and the world-packed kernel
(``repro.sketch.reachkernel``: one bit-parallel multi-world BFS whose
frontier state covers all M worlds at once, sparse-event inner loop).
Stacks are bit-identical — reachability on fixed live-edge graphs is
deterministic — so the benchmark compares pure wall-clock and records
the series to ``benchmarks/results/bank_scaling.txt``.

Both one-time representation builds (per-world live-edge adjacencies
vs. the shared CSR + world-major liveness words) happen outside the
timed region, mirroring how a bank serves many selection queries per
construction; the build times are reported in the footer.

Assertions: the packed kernel computes stacks at least 3x faster than
the per-world loop at M=256 (1.5x under CI smoke, where runner
contention makes wall-clock floors flaky — same policy as the other
scaling benchmarks).

Environment knobs: ``REPRO_BENCH_BANK_WORLDS`` (default 256; 64 under
smoke), ``REPRO_BENCH_BANK_POOL`` (default 96) and
``REPRO_BENCH_BANK_ROUNDS`` (default 2, best-of timing).

``test_bank_scaling_m1024`` repeats the comparison at M=1024 (the
``bank_scaling_m1024`` tracked series) with the compiled worklist
kernel (``packed-jit``) and the world-sharded process fill in the mix
when numba / multiple cores are available; knobs
``REPRO_BENCH_BANK1024_{WORLDS,POOL,ROUNDS}``.
"""

import time

import numpy as np

from repro.core.dysim.nominees import rank_candidates
from repro.sketch import RealizationBank
from repro.eval.reporting import format_table

from benchmarks.conftest import SMOKE, _env_int, record_bench, record_figure

BANK_WORLDS = _env_int("REPRO_BENCH_BANK_WORLDS", 64 if SMOKE else 256)
BANK_POOL = _env_int("REPRO_BENCH_BANK_POOL", 96)
BANK_ROUNDS = _env_int("REPRO_BENCH_BANK_ROUNDS", 2)
MIN_SPEEDUP = 1.5 if SMOKE else 3.0


def _timed_stacks(frozen, kernel, pairs, worlds=None, rounds=None,
                  **bank_kwargs):
    """Best-of-rounds stack computation on fresh (cold-LRU) banks."""
    worlds = BANK_WORLDS if worlds is None else worlds
    rounds = BANK_ROUNDS if rounds is None else rounds
    best_seconds, stacks, build_seconds = np.inf, None, 0.0
    for _ in range(rounds):
        bank = RealizationBank(
            frozen, n_worlds=worlds, rng_seed=0, reach_kernel=kernel,
            **bank_kwargs,
        )
        # Materialize the kernel's representation outside the timed
        # region (a bank answers many queries per construction).
        started = time.perf_counter()
        if kernel == "per-world":
            bank.worlds
        else:
            bank._reach_graph()
        build_seconds = time.perf_counter() - started
        started = time.perf_counter()
        stacks = bank.stacks_for(pairs)
        elapsed = time.perf_counter() - started
        best_seconds = min(best_seconds, elapsed)
    return best_seconds, stacks, build_seconds


def test_bank_scaling(dataset_cache):
    instance = dataset_cache("yelp")
    frozen = instance.frozen()
    probe = RealizationBank(frozen, n_worlds=BANK_WORLDS, rng_seed=0)
    universe = rank_candidates(instance, BANK_POOL)
    pairs = [probe.pair_index(user, item) for user, item in universe]

    ref_seconds, ref_stacks, ref_build = _timed_stacks(
        frozen, "per-world", pairs
    )
    packed_seconds, packed_stacks, packed_build = _timed_stacks(
        frozen, "packed", pairs
    )
    speedup = ref_seconds / packed_seconds if packed_seconds > 0 else 0.0

    rows = [
        [
            "per-world",
            f"{ref_seconds * 1e3:.1f}",
            "1.00",
            f"{ref_build * 1e3:.1f}",
        ],
        [
            "packed",
            f"{packed_seconds * 1e3:.1f}",
            f"{speedup:.2f}",
            f"{packed_build * 1e3:.1f}",
        ],
    ]
    footer = (
        f"worlds={BANK_WORLDS} pool={len(pairs)} rounds={BANK_ROUNDS} "
        f"coins={probe.skeleton.n_entries} pairs={probe.skeleton.n_pairs} "
        f"smoke={int(SMOKE)}"
    )
    record_figure(
        "bank_scaling",
        format_table(
            ["kernel", "stacks_ms", "speedup", "repr_build_ms"], rows
        )
        + "\n"
        + footer,
    )
    record_bench(
        "bank_scaling", packed_seconds * 1e3, speedup,
        worlds=BANK_WORLDS, pool=len(pairs), rounds=BANK_ROUNDS,
    )

    # Reachability on fixed live-edge graphs is deterministic: the two
    # kernels must produce bit-identical stacks.
    assert len(packed_stacks) == len(ref_stacks)
    for ours, theirs in zip(packed_stacks, ref_stacks):
        assert np.array_equal(ours, theirs)

    assert speedup >= MIN_SPEEDUP, (
        f"world-packed kernel too slow: per-world {ref_seconds:.3f}s "
        f"vs packed {packed_seconds:.3f}s ({speedup:.1f}x)"
    )


M1024_WORLDS = _env_int("REPRO_BENCH_BANK1024_WORLDS", 256 if SMOKE else 1024)
M1024_POOL = _env_int("REPRO_BENCH_BANK1024_POOL", 8 if SMOKE else 24)
M1024_ROUNDS = _env_int("REPRO_BENCH_BANK1024_ROUNDS", 1 if SMOKE else 2)
#: The packed-vs-per-world ratio compresses as the word count grows
#: (event expansion touches every live word), so the always-on floor
#: at M=1024 is lower than the M=256 one; the 3x headline belongs to
#: the compiled-kernel leg below.
M1024_MIN_SPEEDUP = 1.5 if SMOKE else 2.0


def _warm_jit_compile():
    """Trigger numba compilation outside any timed region."""
    from repro.sketch.reachkernel import WorldLayout, multi_world_visited_jit

    multi_world_visited_jit(
        np.zeros(2, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
        np.zeros((0, 1), dtype=np.uint64),
        np.array([0], dtype=np.int64),
        WorldLayout(1),
    )


def test_bank_scaling_m1024(dataset_cache):
    """Large-M bank fills: best configured kernel vs the references.

    The tracked ``bank_scaling_m1024`` series records the best
    available kernel (``packed-jit`` when the optional numba extra is
    importable, ``packed`` otherwise) against the per-world Python
    reference at M=1024 — the regime where the per-world loop is
    hopeless and word-level parallelism dominates.  When numba *is*
    present the compiled worklist loop must additionally beat the
    numpy event kernel by the headline factor; without numba that leg
    is skipped rather than silently measuring packed twice.  On
    multi-core runners the world-sharded process fill is timed too and
    contributes to the best-kernel figure.
    """
    import os

    from repro.sketch import HAVE_NUMBA

    instance = dataset_cache("yelp")
    frozen = instance.frozen()
    probe = RealizationBank(frozen, n_worlds=M1024_WORLDS, rng_seed=0)
    universe = rank_candidates(instance, M1024_POOL)
    pairs = [probe.pair_index(user, item) for user, item in universe]

    ref_seconds, ref_stacks, _ = _timed_stacks(
        frozen, "per-world", pairs, worlds=M1024_WORLDS, rounds=M1024_ROUNDS
    )
    packed_seconds, packed_stacks, _ = _timed_stacks(
        frozen, "packed", pairs, worlds=M1024_WORLDS, rounds=M1024_ROUNDS
    )
    assert len(packed_stacks) == len(ref_stacks)
    for ours, theirs in zip(packed_stacks, ref_stacks):
        assert np.array_equal(ours, theirs)

    rows = [
        ["per-world", f"{ref_seconds * 1e3:.1f}", "1.00"],
        [
            "packed",
            f"{packed_seconds * 1e3:.1f}",
            f"{ref_seconds / packed_seconds:.2f}",
        ],
    ]
    best_name, best_seconds = "packed", packed_seconds

    if HAVE_NUMBA:
        _warm_jit_compile()
        jit_seconds, jit_stacks, _ = _timed_stacks(
            frozen, "packed-jit", pairs,
            worlds=M1024_WORLDS, rounds=M1024_ROUNDS,
        )
        for ours, theirs in zip(jit_stacks, ref_stacks):
            assert np.array_equal(ours, theirs)
        rows.append(
            ["packed-jit", f"{jit_seconds * 1e3:.1f}",
             f"{ref_seconds / jit_seconds:.2f}"]
        )
        if jit_seconds < best_seconds:
            best_name, best_seconds = "packed-jit", jit_seconds

    cpu_count = os.cpu_count() or 1
    shards = 1
    if cpu_count > 1:
        from repro.engine import ProcessPoolBackend

        shards = min(4, cpu_count)
        with ProcessPoolBackend(workers=shards) as pool:
            shard_seconds, shard_stacks, _ = _timed_stacks(
                frozen, best_name, pairs,
                worlds=M1024_WORLDS, rounds=M1024_ROUNDS,
                backend=pool, world_shards=shards,
            )
        for ours, theirs in zip(shard_stacks, ref_stacks):
            assert np.array_equal(ours, theirs)
        rows.append(
            [f"{best_name}+shard{shards}", f"{shard_seconds * 1e3:.1f}",
             f"{ref_seconds / shard_seconds:.2f}"]
        )
        if shard_seconds < best_seconds:
            best_name = f"{best_name}+shard{shards}"
            best_seconds = shard_seconds

    speedup = ref_seconds / best_seconds if best_seconds > 0 else 0.0
    footer = (
        f"worlds={M1024_WORLDS} pool={len(pairs)} rounds={M1024_ROUNDS} "
        f"jit={int(HAVE_NUMBA)} cpu_count={cpu_count} smoke={int(SMOKE)}"
    )
    record_figure(
        "bank_scaling_m1024",
        format_table(["kernel", "stacks_ms", "speedup"], rows)
        + "\n"
        + footer,
    )
    record_bench(
        "bank_scaling_m1024", best_seconds * 1e3, speedup,
        kernel=best_name, worlds=M1024_WORLDS, pool=len(pairs),
        rounds=M1024_ROUNDS, jit=HAVE_NUMBA, cpu_count=cpu_count,
        shards=shards,
    )

    assert speedup >= M1024_MIN_SPEEDUP, (
        f"large-M kernel too slow: per-world {ref_seconds:.3f}s vs "
        f"{best_name} {best_seconds:.3f}s ({speedup:.1f}x)"
    )
    if HAVE_NUMBA:
        jit_gain = packed_seconds / best_seconds if best_seconds > 0 else 0.0
        assert jit_gain >= MIN_SPEEDUP, (
            f"compiled kernel too slow: packed {packed_seconds:.3f}s vs "
            f"{best_name} {best_seconds:.3f}s ({jit_gain:.1f}x)"
        )
