"""Realization-bank scaling — world-packed BFS vs. per-world BFS.

Times the computation of packed reachability stacks for a nominee-pool
candidate block on the yelp realization bank two ways: the per-world
reference kernel (one Python BFS per ``ReachabilitySketch``, M runs
per candidate — the pre-PR-5 path) and the world-packed kernel
(``repro.sketch.reachkernel``: one bit-parallel multi-world BFS whose
frontier state covers all M worlds at once, sparse-event inner loop).
Stacks are bit-identical — reachability on fixed live-edge graphs is
deterministic — so the benchmark compares pure wall-clock and records
the series to ``benchmarks/results/bank_scaling.txt``.

Both one-time representation builds (per-world live-edge adjacencies
vs. the shared CSR + world-major liveness words) happen outside the
timed region, mirroring how a bank serves many selection queries per
construction; the build times are reported in the footer.

Assertions: the packed kernel computes stacks at least 3x faster than
the per-world loop at M=256 (1.5x under CI smoke, where runner
contention makes wall-clock floors flaky — same policy as the other
scaling benchmarks).

Environment knobs: ``REPRO_BENCH_BANK_WORLDS`` (default 256; 64 under
smoke), ``REPRO_BENCH_BANK_POOL`` (default 96) and
``REPRO_BENCH_BANK_ROUNDS`` (default 2, best-of timing).
"""

import time

import numpy as np

from repro.core.dysim.nominees import rank_candidates
from repro.sketch import RealizationBank
from repro.eval.reporting import format_table

from benchmarks.conftest import SMOKE, _env_int, record_bench, record_figure

BANK_WORLDS = _env_int("REPRO_BENCH_BANK_WORLDS", 64 if SMOKE else 256)
BANK_POOL = _env_int("REPRO_BENCH_BANK_POOL", 96)
BANK_ROUNDS = _env_int("REPRO_BENCH_BANK_ROUNDS", 2)
MIN_SPEEDUP = 1.5 if SMOKE else 3.0


def _timed_stacks(frozen, kernel, pairs):
    """Best-of-rounds stack computation on fresh (cold-LRU) banks."""
    best_seconds, stacks, build_seconds = np.inf, None, 0.0
    for _ in range(BANK_ROUNDS):
        bank = RealizationBank(
            frozen, n_worlds=BANK_WORLDS, rng_seed=0, reach_kernel=kernel
        )
        # Materialize the kernel's representation outside the timed
        # region (a bank answers many queries per construction).
        started = time.perf_counter()
        if kernel == "per-world":
            bank.worlds
        else:
            bank._reach_graph()
        build_seconds = time.perf_counter() - started
        started = time.perf_counter()
        stacks = bank.stacks_for(pairs)
        elapsed = time.perf_counter() - started
        best_seconds = min(best_seconds, elapsed)
    return best_seconds, stacks, build_seconds


def test_bank_scaling(dataset_cache):
    instance = dataset_cache("yelp")
    frozen = instance.frozen()
    probe = RealizationBank(frozen, n_worlds=BANK_WORLDS, rng_seed=0)
    universe = rank_candidates(instance, BANK_POOL)
    pairs = [probe.pair_index(user, item) for user, item in universe]

    ref_seconds, ref_stacks, ref_build = _timed_stacks(
        frozen, "per-world", pairs
    )
    packed_seconds, packed_stacks, packed_build = _timed_stacks(
        frozen, "packed", pairs
    )
    speedup = ref_seconds / packed_seconds if packed_seconds > 0 else 0.0

    rows = [
        [
            "per-world",
            f"{ref_seconds * 1e3:.1f}",
            "1.00",
            f"{ref_build * 1e3:.1f}",
        ],
        [
            "packed",
            f"{packed_seconds * 1e3:.1f}",
            f"{speedup:.2f}",
            f"{packed_build * 1e3:.1f}",
        ],
    ]
    footer = (
        f"worlds={BANK_WORLDS} pool={len(pairs)} rounds={BANK_ROUNDS} "
        f"coins={probe.skeleton.n_entries} pairs={probe.skeleton.n_pairs} "
        f"smoke={int(SMOKE)}"
    )
    record_figure(
        "bank_scaling",
        format_table(
            ["kernel", "stacks_ms", "speedup", "repr_build_ms"], rows
        )
        + "\n"
        + footer,
    )
    record_bench(
        "bank_scaling", packed_seconds * 1e3, speedup,
        worlds=BANK_WORLDS, pool=len(pairs), rounds=BANK_ROUNDS,
    )

    # Reachability on fixed live-edge graphs is deterministic: the two
    # kernels must produce bit-identical stacks.
    assert len(packed_stacks) == len(ref_stacks)
    for ours, theirs in zip(packed_stacks, ref_stacks):
        assert np.array_equal(ours, theirs)

    assert speedup >= MIN_SPEEDUP, (
        f"world-packed kernel too slow: per-world {ref_seconds:.3f}s "
        f"vs packed {packed_seconds:.3f}s ({speedup:.1f}x)"
    )
