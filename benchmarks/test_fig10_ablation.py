"""Fig. 10 — ablation study: Dysim vs "w/o TM" vs "w/o IP".

Paper setup: Yelp and Amazon, budget and T sweeps.  Expected shape:
both ablations lose influence spread, and the gap widens as T grows
(Sec. VI-C's third observation).

Reproduction scale: b in {60, 100} at T=10 and T in {5, 10} at b=80.
"""

import pytest

from repro.eval.harness import evaluate_group, run_algorithm
from repro.eval.reporting import format_table

from benchmarks.conftest import (
    ALGO_SAMPLES,
    EVAL_SAMPLES,
    FIG9_COST_SCALE,
    record_figure,
)

VARIANTS = {
    "Dysim": {},
    "w/o TM": {"use_target_markets": False},
    "w/o IP": {"use_item_priority": False},
}


def _run_variants(dataset_cache, dataset, sweeps):
    rows = []
    for label, budget, n_promotions in sweeps:
        instance = dataset_cache(
            dataset,
            budget=budget,
            n_promotions=n_promotions,
            cost_scale=FIG9_COST_SCALE,
        )
        for variant, overrides in VARIANTS.items():
            result = run_algorithm(
                "Dysim",
                instance,
                n_samples=ALGO_SAMPLES,
                candidate_pool=40,
                # Ablation isolates the constructed strategy; the
                # Theorem-5 fallbacks are shared across variants and
                # would mask the TM/IP differences.
                use_fallbacks=False,
                **overrides,
            )
            sigma = evaluate_group(
                instance, result.seed_group, n_samples=EVAL_SAMPLES
            )
            rows.append([label, variant, f"{sigma:.1f}"])
    return rows


@pytest.mark.parametrize("dataset", ["yelp", "amazon"])
def test_fig10_ablation(benchmark, dataset_cache, dataset):
    # Fig. 10's budgets exceed Fig. 9's (750-1500 vs 100-500); mirror
    # that: these afford ~4-8 seeds under cost_scale=4.
    sweeps = [
        ("b=300,T=10", 300.0, 10),
        ("b=500,T=10", 500.0, 10),
        ("b=400,T=5", 400.0, 5),
        ("b=400,T=10", 400.0, 10),
    ]
    rows = benchmark.pedantic(
        _run_variants,
        args=(dataset_cache, dataset, sweeps),
        rounds=1,
        iterations=1,
    )
    record_figure(
        f"fig10_ablation_{dataset}",
        format_table(["setting", "variant", "sigma"], rows),
    )
    # Shape: the full algorithm is never dominated across the sweep.
    by_setting: dict[str, dict[str, float]] = {}
    for setting, variant, sigma in rows:
        by_setting.setdefault(setting, {})[variant] = float(sigma)
    wins = sum(
        1
        for values in by_setting.values()
        if values["Dysim"] >= max(values["w/o TM"], values["w/o IP"]) * 0.85
    )
    assert wins >= len(by_setting) - 1
