"""Fig. 10 — ablation study: Dysim vs "w/o TM" vs "w/o IP".

Paper setup: Yelp and Amazon, budget and T sweeps.  Expected shape:
both ablations lose influence spread, and the gap widens as T grows
(Sec. VI-C's third observation).

Thin spec + render pair over the ``fig10_yelp`` / ``fig10_amazon``
sweep specs (setting x variant; budgets mirror the paper's 750-1500 >
Fig. 9 range, affording ~4-8 seeds under cost_scale=4).
"""

import pytest

from benchmarks.conftest import render_figures, run_spec


@pytest.mark.parametrize("dataset", ["yelp", "amazon"])
def test_fig10_ablation(benchmark, dataset):
    spec, rows = benchmark.pedantic(
        run_spec, args=(f"fig10_{dataset}",), rounds=1, iterations=1
    )
    render_figures(spec)
    # Shape: the full algorithm is never dominated across the sweep.
    by_setting: dict[str, dict[str, float]] = {}
    for row in rows:
        by_setting.setdefault(row.params["setting"], {})[
            row.params["variant"]
        ] = row.payload["sigma"]
    wins = sum(
        1
        for values in by_setting.values()
        if values["Dysim"] >= max(values["w/o TM"], values["w/o IP"]) * 0.85
    )
    assert wins >= len(by_setting) - 1
